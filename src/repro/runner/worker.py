"""The worker side of the process-per-node runner.

``worker_main`` is the entry point the driver spawns one process per
node with.  Each worker hosts exactly one :class:`~repro.core.node.
CoDBNode` — its own Python interpreter, its own GIL, its own store —
behind its own :class:`~repro.p2p.tcp.TcpNetwork` listening socket.
Inter-node protocol traffic flows worker-to-worker over TCP exactly as
in the single-process deployment (the stable-JSON envelopes need no
new serialisation); only *control* flows through the driver pipe, as
:mod:`repro.runner.protocol` frames:

* the driver's command loop runs on the worker's main thread: build
  the node (``configure``), wire sibling ports (``connect``), load
  facts, install rules, submit updates/queries, answer snapshot /
  statistics / status probes, and ``shutdown``;
* the node's delivery threads push unsolicited ``request_complete``
  events whenever a session finalizes here — the driver bridges those
  into its proxy :class:`~repro.core.requests.RequestHandle`\\ s.

All pipe writes share one lock (events originate on delivery threads,
replies on the main thread); every frame carries the worker's current
transport totals so the driver's traffic aggregate rides along for
free.
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Any

from repro.core.node import CoDBNode, NodeConfig
from repro.core.rulefile import RuleFile
from repro.errors import CoDBError, ProtocolError
from repro.p2p.faults import injector_from_spec
from repro.p2p.ids import IdAuthority
from repro.p2p.tcp import TcpNetwork
from repro.relational.nulls import NullFactory
from repro.relational.parser import parse_query, parse_schema
from repro.relational.values import decode_row, encode_row
from repro.relational.wrapper import MemoryStore, SqliteStore
from repro.runner import protocol, snapshot


def _build_store(kind: str, schema):
    if kind == "memory":
        return MemoryStore(schema)
    if kind == "sqlite":
        return SqliteStore(schema)
    raise ProtocolError(f"unknown store kind {kind!r}")


class NodeWorker:
    """One worker process: a node, its transport, and the control loop."""

    def __init__(self, conn) -> None:
        self.conn = conn
        self.network: TcpNetwork | None = None
        self.node: CoDBNode | None = None
        self._send_lock = threading.Lock()
        self._running = True
        #: Pipe codec: follow whatever the driver last spoke to us.
        self._pipe_codec = "json"
        #: Durable-snapshot knobs (set by ``configure``).
        self.snapshot_path: str | None = None
        self.checkpoint_interval = 1
        self.incarnation = 0
        self._checkpoint_lock = threading.Lock()
        self._completions_since_checkpoint = 0

    # ------------------------------------------------------------------
    # Pipe plumbing
    # ------------------------------------------------------------------

    def _totals(self) -> dict[str, int]:
        if self.network is None:
            return {
                "messages_sent": 0,
                "bytes_sent": 0,
                "wire_bytes_sent": 0,
                "messages_delivered": 0,
            }
        stats = self.network.stats
        return {
            "messages_sent": stats.messages_sent,
            "bytes_sent": stats.bytes_sent,
            "wire_bytes_sent": stats.wire_bytes_sent,
            "messages_delivered": stats.messages_delivered,
        }

    def _send_frame(self, frame: dict[str, Any]) -> None:
        data = protocol.encode_frame(frame, self._pipe_codec)
        with self._send_lock:
            try:
                self.conn.send_bytes(data)
            except (OSError, ValueError, BrokenPipeError):
                # The driver is gone; nothing left to report to.
                self._running = False

    def _send_event(self, name: str, **details: Any) -> None:
        self._send_frame(protocol.event(name, self._totals(), **details))

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------

    def run(self) -> None:
        while self._running:
            try:
                data = self.conn.recv_bytes()
            except (EOFError, OSError):
                break  # driver died: exit, the OS reaps our sockets
            self._pipe_codec = (
                "binary" if data[:1] == protocol.FRAME_BINARY else "json"
            )
            frame = protocol.decode_frame(data)
            op = frame["op"]
            cmd_id = int(frame.get("cmd_id", 0))
            try:
                result = self._dispatch(op, frame)
            except Exception as exc:  # noqa: BLE001 - reported to driver
                self._send_frame(
                    protocol.error_reply(cmd_id, self._totals(), exc)
                )
                if not isinstance(exc, CoDBError):
                    # Unknown breakage: the node may be inconsistent.
                    break
                continue
            self._send_frame(
                protocol.reply(cmd_id, self._totals(), **(result or {}))
            )
            if op == "shutdown":
                break
        self._teardown()

    def _teardown(self) -> None:
        self._running = False
        if self.network is not None:
            self.network.stop()
        try:
            self.conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Command handlers
    # ------------------------------------------------------------------

    def _dispatch(self, op: str, frame: dict[str, Any]) -> dict[str, Any] | None:
        if op == "configure":
            return self._configure(frame)
        if op == "ping":
            return {}
        if op == "shutdown":
            return {}
        node = self.node
        if node is None:
            raise ProtocolError(f"command {op!r} before configure")
        if op == "connect":
            for peer, port in frame["peers"].items():
                self.network.add_remote_peer(peer, int(port))
            return {}
        if op == "load_facts":
            facts = {
                relation: [decode_row(row) for row in rows]
                for relation, rows in frame["facts"].items()
            }
            loaded = node.load_facts(facts)
            if self.snapshot_path is not None:
                self._write_checkpoint()
            return {"loaded": loaded}
        if op == "set_rules":
            rule_file = RuleFile.from_payload(frame["rules"])
            node.set_rules(rule_file.rules)
            return {}
        if op == "insert":
            inserted = node.insert(frame["relation"], decode_row(frame["row"]))
            if inserted and self.snapshot_path is not None:
                self._write_checkpoint()
            return {"inserted": inserted}
        if op == "submit_update":
            return {
                "request_id": node.submit_update_id(
                    tenant=str(frame.get("tenant", ""))
                )
            }
        if op == "submit_query":
            query = parse_query(frame["query"])
            cache = frame.get("cache")
            return {
                "request_id": node.submit_query_id(
                    query,
                    persist=bool(frame.get("persist", True)),
                    cache=None if cache is None else bool(cache),
                    tenant=str(frame.get("tenant", "")),
                )
            }
        if op == "cancel":
            request_id = frame["request_id"]
            if frame["kind"] == "update":
                return {"cancelled": node.cancel_update(request_id)}
            return {"cancelled": node.cancel_query(request_id)}
        if op == "session_status":
            return self._session_status(frame)
        if op == "query_local":
            rows = node.query(parse_query(frame["query"]))
            return {"rows": [encode_row(r) for r in rows]}
        if op == "query_answer":
            rows = node.network_query_answer(frame["request_id"])
            return {
                "rows": None if rows is None else [encode_row(r) for r in rows]
            }
        if op == "report":
            report = node.stats.report_for(frame["request_id"])
            return {"report": None if report is None else report.to_payload()}
        if op == "snapshot":
            return {
                "relations": {
                    relation: [encode_row(r) for r in rows]
                    for relation, rows in node.snapshot().items()
                }
            }
        if op == "lifetime_totals":
            # "node_totals": the frame-level "totals" member is the
            # transport counters every reply already carries.
            return {"node_totals": node.stats.lifetime_totals()}
        if op == "transport_stats":
            return {}  # the frame-level totals member carries them
        if op == "peer_down":
            self.network.announce_peer_down(frame["peer"])
            return {}
        if op == "install_faults":
            # The only crash action a worker can host is its own: a
            # ScheduledCrash fires where its victim's deliveries are
            # observed, i.e. on the victim's own transport, and SIGKILL
            # (no teardown, no flush) exercises the supervisor's real
            # restart path.  Rejoin is driven by the supervisor, never
            # in-process, so no rejoin actions are wired here.
            injector = injector_from_spec(
                frame["spec"],
                crash_actions={node.name: self._kill_self},
            )
            self.network.install_faults(injector)
            return {}
        if op == "checkpoint":
            return self._write_checkpoint()
        if op == "rejoin":
            payload = (
                snapshot.read_snapshot(self.snapshot_path)
                if self.snapshot_path is not None
                else None
            )
            restored: dict[str, Any] = {}
            if payload is not None:
                # ``set_rules`` already ran (it rebuilds the link
                # table, which would wipe these memories).
                restored = snapshot.restore_node(node, payload)
            node.rejoin()
            if self.snapshot_path is not None:
                self._write_checkpoint()
            return {"restored": payload is not None, **restored}
        raise ProtocolError(f"unknown control command {op!r}")

    def _kill_self(self) -> None:
        os.kill(os.getpid(), signal.SIGKILL)

    def _write_checkpoint(self) -> dict[str, Any]:
        if self.snapshot_path is None or self.node is None:
            return {"written": False}
        payload = snapshot.snapshot_node(
            self.node, incarnation=self.incarnation
        )
        with self._checkpoint_lock:
            snapshot.write_snapshot(self.snapshot_path, payload)
        return {"written": True, "path": self.snapshot_path}

    def _configure(self, frame: dict[str, Any]) -> dict[str, Any]:
        if self.node is not None:
            raise ProtocolError("worker already configured")
        name = frame["name"]
        schema = parse_schema(frame["schema"])
        # Namespacing the authority by node name keeps ids unique
        # across workers (each process mints its own).  Per-worker
        # counters mean two origins' first updates share counter 0;
        # admission seniority stays a network-wide TOTAL order because
        # ``requests._seniority`` tie-breaks equal counters on the
        # full id string, which every node orders identically.
        self.snapshot_path = frame.get("snapshot_path")
        self.checkpoint_interval = max(
            1, int(frame.get("checkpoint_interval", 1))
        )
        self.incarnation = int(frame.get("incarnation", 0))
        # A restarted incarnation mints ids and nulls in its own
        # namespace (``codb-TN-r1`` / ``N0@TN~r1``): survivors may
        # still hold the previous life's ids and null labels, and the
        # fresh namespace guarantees no collision without persisting
        # any counter in the snapshot.
        namespace = (
            f"codb-{name}-r{self.incarnation}"
            if self.incarnation
            else f"codb-{name}"
        )
        ids = IdAuthority(int(frame.get("seed", 0)), namespace=namespace)
        self.network = TcpNetwork(
            wire_codec=frame.get("wire_codec", "json")
        )
        config = NodeConfig(**frame.get("config", {}))
        store = _build_store(frame.get("store", "memory"), schema)
        self.node = CoDBNode(
            name,
            schema,
            self.network,
            ids,
            store=store,
            config=config,
        )
        if self.incarnation:
            self.node.nulls = NullFactory(f"{name}~r{self.incarnation}")
        self.node.completion_listeners.append(self._on_request_complete)
        return {"port": self.network.port_of(name)}

    def _session_status(self, frame: dict[str, Any]) -> dict[str, Any]:
        # Lock-free reads, matching what the single-process network's
        # completion predicate does from its driver thread: update_done
        # is a set-membership check and report_for a dict read.
        node = self.node
        request_id = frame["request_id"]
        if frame.get("kind", "update") == "update":
            done = node.update_done(request_id)
            participated = (
                done
                or node.stats.report_for(request_id) is not None
                or node.admission.is_deferred(request_id)
            )
            return {"done": done, "participated": participated}
        done = node.queries.is_done(request_id)
        return {"done": done, "participated": done}

    # ------------------------------------------------------------------
    # Event sources (delivery threads)
    # ------------------------------------------------------------------

    def _on_request_complete(self, kind: str, request_id: str) -> None:
        self._send_event("request_complete", kind=kind, request_id=request_id)
        if self.snapshot_path is None:
            return
        # Event-count checkpointing: every ``checkpoint_interval``
        # completed sessions, not wall-clock, so the durable state a
        # seeded test restarts from is deterministic.
        self._completions_since_checkpoint += 1
        if self._completions_since_checkpoint < self.checkpoint_interval:
            return
        self._completions_since_checkpoint = 0
        try:
            self._write_checkpoint()
        except Exception as exc:  # noqa: BLE001 - delivery thread
            self._send_event(
                "fatal", error=f"checkpoint failed: {exc}", thread=""
            )

    def thread_excepthook(self, args) -> None:
        """A delivery (or accept/receive) thread raised: the node may
        be wedged.  Report it to the driver as a ``fatal`` event so
        the failure is visible instead of a silent dead thread."""
        self._send_event(
            "fatal",
            error=f"{getattr(args.exc_type, '__name__', '?')}: "
                  f"{args.exc_value}",
            thread=getattr(args.thread, "name", ""),
        )


def worker_main(conn) -> None:
    """Process entry point: serve the control loop until shutdown."""
    worker = NodeWorker(conn)
    threading.excepthook = worker.thread_excepthook
    worker.run()
