"""Process-per-node deployment of the coDB stack.

The paper's nodes are independent JXTA peers, each with its own DBMS;
this package makes that literal: one OS process per node, CQ
evaluation genuinely parallel across cores.  The driver-side network
object lives in :mod:`repro.p2p.procs` (:class:`~repro.p2p.procs.
ProcessNetwork`); this package holds the worker entry point and the
driver↔worker control protocol.
"""

from repro.runner.protocol import COMMANDS, EVENTS, command, decode_frame, encode_frame
from repro.runner.worker import NodeWorker, worker_main

__all__ = [
    "COMMANDS",
    "EVENTS",
    "command",
    "decode_frame",
    "encode_frame",
    "NodeWorker",
    "worker_main",
]
