"""Durable node snapshots for crash-and-rejoin.

A snapshot captures everything a worker needs to resume *where it
left off* rather than from the original fact file: the store's rows,
the lifetime link memories (the importer-side ``fired`` and
source-side ``pushed`` sets that make re-shipping idempotent), and
the answer-cache epoch vector.  The supervisor
(:class:`repro.p2p.procs.ProcessNetwork`) points each worker at a
snapshot path; the worker rewrites it after every
``checkpoint_interval`` completed sessions, and a restarted
incarnation restores from it before running the
:meth:`~repro.core.node.CoDBNode.rejoin` handshake.

Snapshots are single JSON files written atomically (temp file +
``os.replace``), so a crash mid-checkpoint leaves the previous
snapshot intact.  Link-memory keys are row keys
(:func:`repro.relational.values.row_key` tuples), whose elements may
be scalars, tagged ``(tag, value)`` pairs for bools/floats, or
:class:`~repro.relational.values.MarkedNull` — each gets an explicit
JSON encoding here so the round trip is exact.

What is deliberately NOT persisted: the marked-null counter.  A
restarted worker mints nulls in a fresh incarnation namespace
(``N0@TN~r1`` instead of ``N0@TN``), so labels can never collide with
pre-crash nulls that survivors may still hold.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

from repro._util import stable_json
from repro.errors import ProtocolError
from repro.relational.values import (
    MarkedNull,
    decode_row,
    encode_row,
)

#: JSON object key marking an encoded :class:`MarkedNull` key element.
_NULL_KEY = "$null"


def encode_key(key: tuple) -> list:
    """Encode one lifetime-memory row key as a JSON-safe list."""
    encoded: list[Any] = []
    for part in key:
        if isinstance(part, MarkedNull):
            encoded.append({_NULL_KEY: part.label})
        elif isinstance(part, tuple):
            # A (tag, value) pair from ``value_key`` (bool/float tags).
            encoded.append([part[0], part[1]])
        else:
            encoded.append(part)
    return encoded


def decode_key(encoded: list) -> tuple:
    """Invert :func:`encode_key`."""
    parts: list[Any] = []
    for part in encoded:
        if isinstance(part, dict):
            if _NULL_KEY not in part:
                raise ProtocolError(f"malformed snapshot key element: {part!r}")
            parts.append(MarkedNull(part[_NULL_KEY]))
        elif isinstance(part, list):
            parts.append((part[0], part[1]))
        else:
            parts.append(part)
    return tuple(parts)


def snapshot_node(node, *, incarnation: int = 0) -> dict[str, Any]:
    """Capture *node*'s durable state as a JSON-safe payload."""
    with node._lock:
        facts = {
            relation: [encode_row(row) for row in rows]
            for relation, rows in node.snapshot().items()
        }
        fired = {
            rule_id: [encode_key(key) for key in sorted(link.fired, key=repr)]
            for rule_id, link in node.links.outgoing.items()
        }
        pushed = {
            rule_id: [encode_key(key) for key in sorted(link.pushed, key=repr)]
            for rule_id, link in node.links.incoming.items()
        }
        epochs = dict(node.cache.epochs)
    return {
        "name": node.name,
        "incarnation": incarnation,
        "facts": facts,
        "fired": fired,
        "pushed": pushed,
        "epochs": epochs,
    }


def restore_node(node, payload: dict[str, Any]) -> dict[str, int]:
    """Restore a snapshot *payload* into a freshly configured node.

    Must run AFTER ``set_rules`` (which rebuilds the link table) and
    BEFORE the rejoin handshake (whose digests cover the restored
    memories).  Returns counts for the caller's reply.
    """
    facts = {
        relation: [decode_row(row) for row in rows]
        for relation, rows in payload.get("facts", {}).items()
    }
    loaded = node.load_facts(facts) if facts else 0
    restored_fired = 0
    restored_pushed = 0
    with node._lock:
        for rule_id, keys in payload.get("fired", {}).items():
            link = node.links.outgoing.get(rule_id)
            if link is None:
                continue
            link.fired.update(decode_key(key) for key in keys)
            restored_fired += len(keys)
        for rule_id, keys in payload.get("pushed", {}).items():
            link = node.links.incoming.get(rule_id)
            if link is None:
                continue
            link.pushed.update(decode_key(key) for key in keys)
            restored_pushed += len(keys)
        for relation, epoch in payload.get("epochs", {}).items():
            current = node.cache.epochs.get(relation, 0)
            node.cache.epochs[relation] = max(current, int(epoch))
    return {
        "rows_loaded": loaded,
        "fired_restored": restored_fired,
        "pushed_restored": restored_pushed,
    }


def write_snapshot(path: str, payload: dict[str, Any]) -> None:
    """Atomically write *payload* as stable JSON to *path*."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=".snapshot-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(stable_json(payload))
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def read_snapshot(path: str) -> dict[str, Any] | None:
    """Read a snapshot back, or ``None`` when no snapshot exists yet."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = handle.read()
    except FileNotFoundError:
        return None
    try:
        payload = json.loads(data)
    except ValueError as exc:
        raise ProtocolError(f"corrupt snapshot {path!r}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"corrupt snapshot {path!r}: not an object")
    return payload
