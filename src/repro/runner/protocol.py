"""The driver↔worker control protocol of the process-per-node runner.

One frame = one control object, sent over a ``multiprocessing`` pipe
with ``send_bytes``/``recv_bytes``.  Frames are self-describing, in
either of the two codecs the p2p wire speaks
(:mod:`repro.p2p.messages`): stable JSON (the default) or the binary
restricted-pickle codec (first byte :data:`~repro.p2p.messages.
FRAME_BINARY`).  No negotiation is needed on the pipe — the driver
spawned the worker from the same package, so both ends decode both
codecs; the driver simply encodes with its configured codec and the
worker answers in the codec of the last command it received.  Three
frame shapes flow:

* **commands** (driver → worker): ``{"op": <command>, "cmd_id": n,
  ...arguments}`` — see :data:`COMMANDS` for the vocabulary.
* **replies** (worker → driver): ``{"op": "reply", "cmd_id": n,
  ...result}`` answering exactly one command, or ``{"op": "error",
  "cmd_id": n, "error": str, "error_kind": str}`` when the command
  raised.
* **events** (worker → driver, unsolicited): ``{"op": "event",
  "event": str, ...}`` — session completions
  (``request_complete``) and worker-fatal notices pushed by the
  worker's delivery threads.

Every worker → driver frame carries a ``totals`` member with the
worker's current transport counters, so the driver's aggregate
traffic window is refreshed by the very frames that move it forward.

Rows cross the channel pre-encoded via
:func:`repro.relational.values.encode_row` (marked nulls and all
value types survive the JSON round trip); rules travel as
:meth:`repro.core.rulefile.RuleFile.to_payload`, reports as
:meth:`repro.core.statistics.UpdateReport.to_payload`.
"""

from __future__ import annotations

import json
from typing import Any

from repro._util import stable_json
from repro.errors import ProtocolError
from repro.p2p.messages import FRAME_BINARY, decode_binary, encode_binary

#: Driver → worker command vocabulary.  ``configure`` must be first
#: (it builds the node); ``connect`` wires the exchanged ports;
#: everything else may arrive in any order; ``shutdown`` is last.
COMMANDS = (
    "configure",        # build transport + node: name/schema/config/store
    "connect",          # install {peer: port} for every sibling worker
    "load_facts",       # bulk-load {relation: [encoded rows]}
    "set_rules",        # install a rule-file payload (node filters relevance)
    "insert",           # one local row (continuous-mode feeds)
    "submit_update",    # submit a global update; returns its id
    "submit_query",     # submit a network query; returns its id
    "cancel",           # withdraw a queued request by id
    "session_status",   # {done, participated} for one request id
    "query_answer",     # answer rows of a completed query
    "query_local",      # answer a query from local data only
    "report",           # the node's UpdateReport payload for one update
    "snapshot",         # {relation: [encoded rows]} of the whole store
    "lifetime_totals",  # NodeStatistics.lifetime_totals()
    "transport_stats",  # the worker transport's traffic counters
    "peer_down",        # a sibling worker died: close links toward it
    "install_faults",   # install a FaultInjector spec on the transport
    "checkpoint",       # write a durable snapshot to the snapshot path
    "rejoin",           # restore from snapshot + run the rejoin handshake
    "ping",             # liveness probe
    "shutdown",         # stop the transport and exit the process
)

#: Worker → driver unsolicited event names.
EVENTS = (
    "request_complete",  # a session finished at this worker's node
    "fatal",             # a delivery thread raised; worker is suspect
)


def encode_frame(frame: dict[str, Any], codec: str = "json") -> bytes:
    """Serialise one control frame in *codec* (``"json"``/``"binary"``)."""
    if codec == "binary":
        return encode_binary(frame)
    return stable_json(frame).encode("utf-8")


def decode_frame(data: bytes) -> dict[str, Any]:
    """Parse one self-describing control frame (either codec); raises
    ProtocolError on malformed input."""
    if data[:1] == FRAME_BINARY:
        frame = decode_binary(data)
    else:
        try:
            frame = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"malformed control frame: {exc}") from exc
    if not isinstance(frame, dict) or "op" not in frame:
        raise ProtocolError(f"control frame without op: {frame!r}")
    return frame


def command(op: str, cmd_id: int, **arguments: Any) -> dict[str, Any]:
    """Build a driver → worker command frame."""
    if op not in COMMANDS:
        raise ProtocolError(f"unknown control command {op!r}")
    frame = {"op": op, "cmd_id": cmd_id}
    frame.update(arguments)
    return frame


def reply(cmd_id: int, totals: dict[str, int], **result: Any) -> dict[str, Any]:
    """Build a worker → driver success reply."""
    frame: dict[str, Any] = {"op": "reply", "cmd_id": cmd_id, "totals": totals}
    frame.update(result)
    return frame


def error_reply(
    cmd_id: int, totals: dict[str, int], exc: BaseException
) -> dict[str, Any]:
    """Build a worker → driver error reply for a failed command."""
    return {
        "op": "error",
        "cmd_id": cmd_id,
        "totals": totals,
        "error": str(exc),
        "error_kind": type(exc).__name__,
    }


def event(name: str, totals: dict[str, int], **details: Any) -> dict[str, Any]:
    """Build a worker → driver unsolicited event frame."""
    if name not in EVENTS:
        raise ProtocolError(f"unknown control event {name!r}")
    frame: dict[str, Any] = {"op": "event", "event": name, "totals": totals}
    frame.update(details)
    return frame
