"""Seeded synthetic data generation.

Every generator draws from one ``random.Random(seed)``, so a workload
is a pure function of its parameters — the property that makes the
benchmark suite reproducible run to run.

The central knob is *overlap*: how much of one node's data coincides
with its neighbours'.  Overlap controls how much the update
algorithm's duplicate elimination ("remove from T those tuples which
are already in R") actually removes, which in turn controls message
counts and volumes — several experiments sweep it.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.relational.values import Row

_FIRST_NAMES = (
    "anna", "bruno", "carla", "dario", "elena", "fabio", "giulia", "hugo",
    "irene", "jacopo", "katia", "luca", "marta", "nicola", "olga", "paolo",
    "rita", "sergio", "teresa", "ugo", "viola", "walter",
)

_CITIES = (
    "Trento", "Bolzano", "Rovereto", "Merano", "Bressanone", "Pergine",
    "Arco", "Riva", "Levico", "Cles",
)


class DataGenerator:
    """Deterministic tuple factory for one workload."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    # Integer item data (the topology benchmarks)
    # ------------------------------------------------------------------

    def items_for_node(
        self,
        node_index: int,
        count: int,
        *,
        overlap: float = 0.0,
        domain: int = 1_000_000,
    ) -> list[Row]:
        """``count`` distinct ``(key, value)`` rows for one node.

        A fraction *overlap* of every node's rows comes from one shared,
        seed-determined pool (identical rows at every node — the update
        algorithm's dedup eliminates them in flight); the rest is drawn
        from a per-node private stripe of the key domain, so those
        imports are always new.
        """
        if not 0.0 <= overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1], got {overlap}")
        shared_count = int(round(count * overlap))
        shared = self.shared_pool(shared_count, domain=domain)
        rng = random.Random(f"{self.seed}/{node_index}/items")
        base = (node_index + 1) * domain
        keys = rng.sample(range(base, base + domain), count - shared_count)
        return shared + [(key, rng.randrange(1_000)) for key in keys]

    def shared_pool(self, count: int, *, domain: int = 1_000_000) -> list[Row]:
        """A common pool of rows (for fully-overlapping workloads)."""
        rng = random.Random(f"{self.seed}/pool")
        keys = rng.sample(range(domain), count)
        return [(key, rng.randrange(1_000)) for key in keys]

    # ------------------------------------------------------------------
    # People data (the scenario examples)
    # ------------------------------------------------------------------

    def people(self, count: int) -> list[Row]:
        """``(name, city)`` rows; names get numeric suffixes when the
        pool runs out, cities recycle the Trentino list."""
        rng = random.Random(f"{self.seed}/people")
        rows: list[Row] = []
        for i in range(count):
            base = _FIRST_NAMES[i % len(_FIRST_NAMES)]
            name = base if i < len(_FIRST_NAMES) else f"{base}{i}"
            rows.append((name, rng.choice(_CITIES)))
        return rows

    def measurements(
        self, count: int, *, sensors: int = 10
    ) -> list[Row]:
        """``(sensor, tick, reading)`` rows for streaming-ish workloads."""
        rng = random.Random(f"{self.seed}/measurements")
        return [
            (rng.randrange(sensors), tick, rng.randrange(10_000))
            for tick in range(count)
        ]

    # ------------------------------------------------------------------

    def ints(self, count: int, *, upper: int = 1_000_000) -> Iterator[int]:
        rng = random.Random(f"{self.seed}/ints")
        for _ in range(count):
            yield rng.randrange(upper)
