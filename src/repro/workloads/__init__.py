"""Workload generation for the demo's experiments.

§4: "In the demo we will measure the performance of various networks
arranged in different topologies: we need to start-up all the nodes,
establish coordination rules between pairs of nodes, run a set of
experiments and, finally, collect statistical information."

* :mod:`topologies` — blueprints for the standard shapes (chain, ring,
  star, broadcast, tree, grid, random) with one relation per node and
  copy-style rules along the edges;
* :mod:`datagen` — seeded tuple generators with controllable overlap
  (overlap drives dedup rates, which drive message volumes);
* :mod:`scenarios` — hand-written heterogeneous-schema scenarios,
  including the Trentino registry scenario used by the examples.
"""

from repro.workloads.topologies import (
    NetworkBlueprint,
    NodeSpec,
    broadcast_star,
    chain,
    complete,
    grid,
    random_graph,
    ring,
    star,
    tree,
    TOPOLOGY_BUILDERS,
)
from repro.workloads.datagen import DataGenerator
from repro.workloads.scenarios import (
    FAULT_SCENARIO_NAMES,
    fault_models,
    install_fault_scenario,
    read_heavy_mix,
    supply_chain_scenario,
    trentino_scenario,
)

__all__ = [
    "NetworkBlueprint",
    "NodeSpec",
    "chain",
    "ring",
    "star",
    "broadcast_star",
    "tree",
    "grid",
    "random_graph",
    "complete",
    "TOPOLOGY_BUILDERS",
    "DataGenerator",
    "trentino_scenario",
    "supply_chain_scenario",
    "FAULT_SCENARIO_NAMES",
    "fault_models",
    "install_fault_scenario",
    "read_heavy_mix",
]
