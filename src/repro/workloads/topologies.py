"""Topology blueprints: "various networks arranged in different
topologies" (§4).

A :class:`NetworkBlueprint` is a declarative description — node specs,
rule texts, a suggested update origin — that :meth:`NetworkBlueprint.build`
turns into a live :class:`~repro.core.network.CoDBNetwork` with seeded
data.  Every builder uses one relation ``item(k: int, v: int)`` per
node and copy rules along the edges, so topology is the *only*
variable across the family (the demo's experimental design).

Edge direction convention: an edge ``A ← B`` means *A imports from B*
(the rule's target is A).  The suggested origin is the node where a
global update pulls the most data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.core.network import CoDBNetwork
from repro.core.node import NodeConfig
from repro.p2p.inproc import LatencyModel
from repro.p2p.transport import Transport
from repro.workloads.datagen import DataGenerator

ITEM_SCHEMA = "item(k: int, v: int)"


@dataclass
class NodeSpec:
    """One node in a blueprint."""

    name: str
    schema_text: str = ITEM_SCHEMA


@dataclass
class NetworkBlueprint:
    """A declarative network: nodes + rules + origin."""

    name: str
    nodes: list[NodeSpec]
    rule_texts: list[str]
    origin: str
    description: str = ""

    @property
    def size(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.rule_texts)

    def build(
        self,
        *,
        seed: int = 0,
        tuples_per_node: int = 50,
        overlap: float = 0.0,
        config: NodeConfig | None = None,
        transport: Transport | None = None,
        latency: LatencyModel | None = None,
        with_superpeer: bool = True,
        store_factory: Callable[..., object] | None = None,
    ) -> CoDBNetwork:
        """Instantiate the blueprint as a live network with seeded data.

        *store_factory* picks the storage wrapper per node: it is
        called with the node's parsed schema (e.g. ``SqliteStore``
        itself, or a lambda adding a file path) and must return a
        :class:`~repro.relational.wrapper.Wrapper`.  ``None`` keeps the
        default in-memory store, so the same blueprint runs unchanged
        on every backend — the cross-backend regression tests rely on
        exactly that.
        """
        from repro.relational.parser import parse_schema

        network = CoDBNetwork(
            seed=seed,
            transport=transport,
            latency=latency,
            config=config,
            with_superpeer=with_superpeer,
        )
        generator = DataGenerator(seed)
        for index, spec in enumerate(self.nodes):
            if store_factory is None:
                network.add_node(spec.name, spec.schema_text)
            else:
                schema = parse_schema(spec.schema_text)
                network.add_node(spec.name, schema, store=store_factory(schema))
            if tuples_per_node > 0:
                rows = generator.items_for_node(
                    index, tuples_per_node, overlap=overlap
                )
                network.node(spec.name).load_facts({"item": rows})
        network.add_rules(self.rule_texts)
        network.start()
        return network


def _copy_rule(target: str, source: str) -> str:
    return f"{target}:item(k, v) <- {source}:item(k, v)"


def _nodes(count: int, prefix: str = "N") -> list[NodeSpec]:
    return [NodeSpec(f"{prefix}{i}") for i in range(count)]


def chain(size: int) -> NetworkBlueprint:
    """``N0 ← N1 ← ... ← N{size-1}``: data flows down to N0."""
    if size < 1:
        raise ValueError("a chain needs at least one node")
    rules = [_copy_rule(f"N{i}", f"N{i + 1}") for i in range(size - 1)]
    return NetworkBlueprint(
        name=f"chain-{size}",
        nodes=_nodes(size),
        rule_texts=rules,
        origin="N0",
        description="linear chain; the update origin sits at the sink",
    )


def ring(size: int) -> NetworkBlueprint:
    """A chain with the cycle closed: the canonical cyclic rule set."""
    if size < 2:
        raise ValueError("a ring needs at least two nodes")
    rules = [_copy_rule(f"N{i}", f"N{(i + 1) % size}") for i in range(size)]
    return NetworkBlueprint(
        name=f"ring-{size}",
        nodes=_nodes(size),
        rule_texts=rules,
        origin="N0",
        description="cyclic chain; needs the fix-point machinery",
    )


def star(spokes: int) -> NetworkBlueprint:
    """A hub importing from every spoke (fan-in)."""
    if spokes < 1:
        raise ValueError("a star needs at least one spoke")
    nodes = [NodeSpec("HUB")] + _nodes(spokes, "S")
    rules = [_copy_rule("HUB", f"S{i}") for i in range(spokes)]
    return NetworkBlueprint(
        name=f"star-{spokes}",
        nodes=nodes,
        rule_texts=rules,
        origin="HUB",
        description="fan-in star; one round of parallel imports",
    )


def broadcast_star(spokes: int) -> NetworkBlueprint:
    """Every spoke importing from the hub (fan-out)."""
    if spokes < 1:
        raise ValueError("a star needs at least one spoke")
    nodes = [NodeSpec("HUB")] + _nodes(spokes, "S")
    rules = [_copy_rule(f"S{i}", "HUB") for i in range(spokes)]
    return NetworkBlueprint(
        name=f"broadcast-{spokes}",
        nodes=nodes,
        rule_texts=rules,
        origin="S0",
        description="fan-out star; the origin pulls through the hub",
    )


def tree(branching: int, depth: int) -> NetworkBlueprint:
    """A complete tree; every parent imports from its children.

    The root is node ``N0``; the update origin.  ``depth`` counts
    edges on the root-to-leaf path.
    """
    if branching < 1 or depth < 0:
        raise ValueError("need branching >= 1 and depth >= 0")
    names = ["N0"]
    rules: list[str] = []
    frontier = ["N0"]
    counter = 1
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(branching):
                child = f"N{counter}"
                counter += 1
                names.append(child)
                rules.append(_copy_rule(parent, child))
                next_frontier.append(child)
        frontier = next_frontier
    return NetworkBlueprint(
        name=f"tree-{branching}x{depth}",
        nodes=[NodeSpec(n) for n in names],
        rule_texts=rules,
        origin="N0",
        description="complete tree, parents import from children",
    )


def grid(rows: int, cols: int) -> NetworkBlueprint:
    """A rows×cols grid; each cell imports from its right and lower
    neighbours, so everything flows toward cell (0, 0)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")
    def name(r: int, c: int) -> str:
        return f"G{r}_{c}"

    nodes = [NodeSpec(name(r, c)) for r in range(rows) for c in range(cols)]
    rules = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                rules.append(_copy_rule(name(r, c), name(r, c + 1)))
            if r + 1 < rows:
                rules.append(_copy_rule(name(r, c), name(r + 1, c)))
    return NetworkBlueprint(
        name=f"grid-{rows}x{cols}",
        nodes=nodes,
        rule_texts=rules,
        origin=name(0, 0),
        description="2D grid; many redundant paths exercise dedup",
    )


def complete(size: int) -> NetworkBlueprint:
    """Every node imports from every other node (dense, cyclic)."""
    if size < 2:
        raise ValueError("complete graph needs at least two nodes")
    rules = [
        _copy_rule(f"N{i}", f"N{j}")
        for i in range(size)
        for j in range(size)
        if i != j
    ]
    return NetworkBlueprint(
        name=f"complete-{size}",
        nodes=_nodes(size),
        rule_texts=rules,
        origin="N0",
        description="complete digraph; the densest cyclic case",
    )


def random_graph(size: int, probability: float, seed: int = 0) -> NetworkBlueprint:
    """A connected random digraph.

    A random spanning tree guarantees every node can reach the origin
    (so the whole network participates); extra edges appear i.i.d.
    with *probability*.  Cycles are allowed — that is the point.
    """
    if size < 1:
        raise ValueError("need at least one node")
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    for child in range(1, size):
        parent = rng.randrange(child)
        edges.add((parent, child))  # parent imports from child
    for i in range(size):
        for j in range(size):
            if i != j and rng.random() < probability:
                edges.add((i, j))
    rules = [_copy_rule(f"N{i}", f"N{j}") for i, j in sorted(edges)]
    return NetworkBlueprint(
        name=f"random-{size}-p{probability}",
        nodes=_nodes(size),
        rule_texts=rules,
        origin="N0",
        description=f"random connected digraph, edge probability {probability}",
    )


#: Name -> builder for the standard size-parameterised family, used by
#: the topology-sweep benchmarks (E1).
TOPOLOGY_BUILDERS: dict[str, Callable[[int], NetworkBlueprint]] = {
    "chain": chain,
    "ring": ring,
    "star": lambda n: star(max(1, n - 1)),
    "broadcast": lambda n: broadcast_star(max(1, n - 1)),
    "tree": lambda n: tree(2, max(1, (n - 1).bit_length() - 1)),
    "grid": lambda n: grid(max(1, round(n ** 0.5)), max(1, round(n ** 0.5))),
    "random": lambda n: random_graph(n, 0.15, seed=n),
    "complete": complete,
}
