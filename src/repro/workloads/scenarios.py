"""Hand-written heterogeneous scenarios.

The topology blueprints keep every node's schema identical so topology
is the only variable.  These scenarios do the opposite: realistic
*different* schemas per node, GLAV rules that reshape data (join in
the body, multiple atoms and existential variables in the head) — the
setting the paper's introduction motivates (autonomous databases in
the Trentino region was the running example of the coDB group's
papers).
"""

from __future__ import annotations

import random

from repro.core.network import CoDBNetwork
from repro.core.node import NodeConfig


def trentino_scenario(
    *, seed: int = 0, config: NodeConfig | None = None
) -> CoDBNetwork:
    """Civil registries of Bolzano and Trento plus a hospital.

    * ``BZ`` — registry of Bolzano: ``person(name, city)`` and
      ``works(name, org)``.
    * ``TN`` — registry of Trento: ``citizen(name)`` and
      ``address(name, city)``.
    * ``HOSP`` — a hospital: ``patient(name, ward)``; its ward for
      migrated records is unknown — the rule's head has an existential
      variable, so the update mints marked nulls.

    The two registries mirror each other (a cyclic rule pair), and the
    hospital imports Trento's citizens.
    """
    net = CoDBNetwork(seed=seed, config=config)
    net.add_node(
        "BZ",
        """
        person(name: str, city: str)
        works(name: str, org: str)
        """,
        facts="""
        person('anna', 'Trento'). person('bruno', 'Bolzano').
        person('carla', 'Merano'). person('dario', 'Trento').
        works('anna', 'unibz'). works('bruno', 'museion').
        works('dario', 'unitn').
        """,
    )
    net.add_node(
        "TN",
        """
        citizen(name: str)
        address(name: str, city: str)
        """,
        facts="""
        citizen('elena'). citizen('fabio').
        address('elena', 'Trento'). address('fabio', 'Rovereto').
        """,
    )
    net.add_node(
        "HOSP",
        "patient(name: str, ward: str)",
        facts="patient('giulia', 'cardiology')",
    )
    # Trento registers every person BZ knows to live in Trento; both
    # the citizen list and the address book are filled by one rule
    # (a conjunctive head).
    net.add_rule(
        "TN:citizen(n), TN:address(n, c) <- BZ:person(n, c), c = 'Trento'"
    )
    # Bolzano mirrors Trento's address book back (closing the cycle).
    net.add_rule("BZ:person(n, c) <- TN:address(n, c)")
    # The hospital admits Trento's citizens; the ward is unknown, so
    # the head's existential variable w becomes a marked null.
    net.add_rule("HOSP:patient(n, w) <- TN:citizen(n)")
    net.start()
    return net


def supply_chain_scenario(
    *, suppliers: int = 3, seed: int = 0, config: NodeConfig | None = None
) -> CoDBNetwork:
    """A distributor aggregating heterogeneous supplier catalogues.

    Each supplier ``S{i}`` exports ``product(sku, price)`` and keeps a
    non-exported ``cost`` relation (exercising the DBS ⊂ LDB split);
    the distributor's schema is ``offer(sku, supplier, price)`` —
    the supplier name is baked in by a constant in the rule head — and
    a ``listed(sku)`` summary filled by a second rule.  A retailer
    imports cheap offers from the distributor with a comparison
    predicate.
    """
    net = CoDBNetwork(seed=seed, config=config)
    for i in range(suppliers):
        rows = [(f"sku{i}_{j}", 10 * (i + 1) + j) for j in range(5)]
        net.add_node(
            f"S{i}",
            """
            product(sku: str, price: int)
            local cost(sku: str, amount: int)
            """,
        )
        net.node(f"S{i}").load_facts({"product": rows})
        net.node(f"S{i}").load_facts(
            {"cost": [(sku, price - 5) for sku, price in rows]}
        )
    net.add_node(
        "DIST",
        """
        offer(sku: str, supplier: str, price: int)
        listed(sku: str)
        """,
    )
    net.add_node("SHOP", "bargain(sku: str, price: int)")
    for i in range(suppliers):
        net.add_rule(
            f"DIST:offer(s, '{f'S{i}'}', p), DIST:listed(s) <- S{i}:product(s, p)"
        )
    net.add_rule("SHOP:bargain(s, p) <- DIST:offer(s, w, p), p <= 20")
    net.start()
    return net


# ---------------------------------------------------------------------------
# Read-heavy query mixes (the answer-cache workloads)
# ---------------------------------------------------------------------------


def read_heavy_mix(
    relation: str = "item",
    *,
    reads: int = 40,
    distinct: int = 4,
    upper: int = 1_000,
    seed: int = 0,
) -> list[str]:
    """A seeded read-heavy query sequence over one unary relation.

    ``reads`` conjunctive queries drawn (with repetition) from a pool
    of ``distinct`` templates — one full scan plus range filters with
    seed-determined cut-offs below ``upper``.  The repetition ratio
    ``reads / distinct`` is the answer cache's working-set knob: every
    repeat of a template between writes is a potential hit, so the
    expected warm hit rate is ``1 - distinct / reads``.
    """
    if distinct < 1:
        raise ValueError(f"need at least one template, got {distinct}")
    rng = random.Random(f"{seed}/read-mix")
    pool = [f"q(x) <- {relation}(x)"]
    while len(pool) < distinct:
        pool.append(f"q(x) <- {relation}(x), x >= {rng.randrange(upper)}")
    return [rng.choice(pool) for _ in range(reads)]


# ---------------------------------------------------------------------------
# Adversarial weather (the fault-injection engine's standard scenarios)
# ---------------------------------------------------------------------------

#: Scenario name -> builder; shared by the randomized differential
#: tests and the ``bench_churn`` fault matrix so both exercise exactly
#: the same weather.  ``peers`` is the network's node list in driver
#: order: flap picks the first edge, a partition cuts the tail half.
FAULT_SCENARIO_NAMES = (
    "duplicate",
    "reorder",
    "delay",
    "dup+reorder+delay",
    "loss-retried",
    "flap",
)


def fault_models(scenario: str, peers: list[str]) -> list:
    """Build the fault-model stack for one named scenario.

    Everything here is *absorbable* weather: duplication is dropped by
    endpoint dedup, reorder/delay only stretch the schedule, losses are
    retried to absorption and flapped links bounce-and-retransmit — so
    each scenario's final states must be differential-equal to the
    fault-free run (the partition scenarios, whose divergence is the
    point, are built explicitly by their tests instead).
    """
    from repro.p2p.faults import (
        Duplication,
        ExtraDelay,
        LinkFlap,
        MessageLoss,
        Reorder,
    )

    stacks = {
        "duplicate": lambda: [Duplication(0.35)],
        "reorder": lambda: [Reorder(0.8, max_extra=0.004)],
        "delay": lambda: [ExtraDelay(0.002, jitter=0.002)],
        "dup+reorder+delay": lambda: [
            Duplication(0.25),
            Reorder(0.6, max_extra=0.003),
            ExtraDelay(0.001, jitter=0.001),
        ],
        "loss-retried": lambda: [
            MessageLoss(0.25, retries=25, retry_delay=0.002)
        ],
        "flap": lambda: [
            LinkFlap(peers[0], peers[1], down_every=4, down_for=2)
        ],
    }
    if scenario not in stacks:
        raise ValueError(
            f"unknown fault scenario {scenario!r} "
            f"(known: {', '.join(FAULT_SCENARIO_NAMES)})"
        )
    return stacks[scenario]()


def install_fault_scenario(net: CoDBNetwork, scenario: str, *, seed: int = 0):
    """Install one named scenario on a (started) simulator network;
    returns the bound :class:`~repro.p2p.faults.FaultInjector`."""
    from repro.p2p.faults import FaultInjector

    peers = list(net.nodes)
    injector = FaultInjector(*fault_models(scenario, peers), seed=seed)
    net.transport.install_faults(injector)
    return injector
