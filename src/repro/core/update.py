"""The global update algorithm (§3 of the paper, [Franconi et al., 2004]).

Protocol recap, with the paper's vocabulary:

* The origin node floods ``update_request`` messages over its pipes;
  every node, on first contact, forwards the request to all its
  acquaintances ("propagate the global update to their acquaintances")
  and dedups re-receipts by the update identifier ("propagation is
  stopped ... if that node has already received this request message").
* A request from acquaintance *t* **activates** every incoming link
  serving *t*: the node "executes the coordination rule and sends the
  results back" — the body is evaluated over the full local database,
  projected onto the rule's frontier variables, deduplicated against
  the link's *sent* set, and shipped as a ``query_result``.
* A ``query_result`` arriving over outgoing link *O* carries frontier
  rows.  New rows (dedup against the link's *received* set — "we first
  remove from T those tuples which are already in R") instantiate the
  rule head, minting "fresh new marked null values" for existential
  head variables; genuinely new tuples (``T'``) are inserted, and
  every *dependent* incoming link is re-evaluated **semi-naively** —
  "computed by substituting R by T'" — with the link's sent-set
  removing "those tuples which have been already sent".
* Link closure, the paper's condition (a): an incoming link closes
  when every relevant outgoing link is closed (leaf links close right
  after their initial results); a ``link_closed`` message closes the
  matching outgoing link at the importer, cascading network-wide
  through acyclic dependencies.
* Cyclic dependencies cannot close by cascade (each link waits on the
  others around the cycle).  They close via the paper's condition (b)
  — "all query results did not bring any new data" — detected exactly
  by the Dijkstra–Scholten machinery of
  :mod:`repro.core.termination`: when the origin detects global
  quiescence it floods ``update_complete``, and every node force-
  closes its remaining links (recorded as ``closed_by="quiescence"``
  in the statistics).

The engine object holds all per-update state for one node and is
driven entirely by message handlers, so it runs unchanged on the
simulated and the TCP transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.links import CLOSED, INACTIVE, OPEN, IncomingLink
from repro.errors import FixpointGuardError, ProtocolError, UnknownPeerError
from repro.p2p.messages import Message
from repro.relational.containment import tuple_subsumed
from repro.relational.evaluation import apply_head
from repro.relational.storage import Relation
from repro.relational.values import MarkedNull, Row, decode_row, encode_row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import CoDBNode

#: Message kinds owned by this engine.
UPDATE_KINDS = ("update_request", "query_result", "link_closed", "update_complete")


@dataclass
class UpdateParticipation:
    """One node's volatile state for one global update."""

    update_id: str
    origin: str
    done: bool = False
    #: Longest propagation path among the deltas currently being
    #: processed feeds the ``path_len`` of the results they trigger.
    max_seen_path: int = 0


class UpdateEngine:
    """Global-update message processing for one node."""

    def __init__(self, node: "CoDBNode") -> None:
        self.node = node
        self.active: UpdateParticipation | None = None
        self.completed_updates: set[str] = set()

    # ------------------------------------------------------------------
    # Initiation
    # ------------------------------------------------------------------

    def initiate(self) -> str:
        """Start a global update at this node; returns the update id.

        "A global update is started when some (dedicated) node sends to
        all its acquaintances global update requests" (§2); the unique
        identifier is generated here, at the origin.
        """
        node = self.node
        update_id = node.endpoint.ids.update_id()
        node.termination.start_root(update_id)
        self._begin_participation(update_id, origin=node.name)
        report = node.stats.report_for(update_id)
        assert report is not None
        for remote in node.pipes.remotes():
            self._send_request(update_id, remote, path=[node.name])
        node.termination.check_quiescence(update_id)
        return update_id

    # ------------------------------------------------------------------
    # Handlers (wired by the node)
    # ------------------------------------------------------------------

    def on_update_request(self, message: Message) -> None:
        update_id = message.payload["update_id"]
        if update_id in self.completed_updates:
            # Stale flood tail after completion; nothing to do, but the
            # sender still gets its ack so its deficit drains.
            self.node.send_ack(message.sender, update_id)
            return
        tree = self.node.termination.on_engaging_message(update_id, message.sender)
        origin = message.payload["origin"]
        path = list(message.payload.get("path", ()))
        first_contact = self.active is None or self.active.update_id != update_id
        if first_contact:
            self._begin_participation(update_id, origin=origin)
            forward_path = path + [self.node.name]
            targets = [
                remote
                for remote in self.node.pipes.remotes()
                if remote != message.sender
            ]
            # The flood proper excludes the sender, but if we *import*
            # from the sender we must still request from it: its
            # incoming links toward us only activate on our explicit
            # request (this is what makes mutual imports — cycles of
            # length two — work).
            if any(
                link.remote == message.sender
                for link in self.node.links.outgoing.values()
            ):
                targets.append(message.sender)
            for remote in targets:
                self._send_request(update_id, remote, path=forward_path)
        self._activate_links_for(update_id, message.sender)
        self.node.termination.after_processing(update_id, message.sender, tree)

    def on_query_result(self, message: Message) -> None:
        update_id = message.payload["update_id"]
        if update_id in self.completed_updates:
            self.node.send_ack(message.sender, update_id)
            return
        tree = self.node.termination.on_engaging_message(update_id, message.sender)
        self._ingest_results(message)
        self.node.termination.after_processing(update_id, message.sender, tree)

    def on_link_closed(self, message: Message) -> None:
        update_id = message.payload["update_id"]
        if update_id in self.completed_updates:
            self.node.send_ack(message.sender, update_id)
            return
        tree = self.node.termination.on_engaging_message(update_id, message.sender)
        rule_id = message.payload["rule_id"]
        link = self.node.links.outgoing.get(rule_id)
        if link is None:
            raise ProtocolError(
                f"{self.node.name}: link_closed for unknown outgoing "
                f"rule {rule_id!r}"
            )
        if link.state != CLOSED:
            link.state = CLOSED
            link.closed_by = "cascade"
        self._cascade_closures(update_id)
        self._maybe_finish_locally(update_id)
        self.node.termination.after_processing(update_id, message.sender, tree)

    def on_update_complete(self, message: Message) -> None:
        update_id = message.payload["update_id"]
        self._finalize(update_id, forwarded_from=message.sender)

    def root_complete(self, update_id: str) -> None:
        """Termination detected at the origin (condition (b) globally)."""
        self._finalize(update_id, forwarded_from=None)

    # ------------------------------------------------------------------
    # Participation plumbing
    # ------------------------------------------------------------------

    def _begin_participation(self, update_id: str, origin: str) -> None:
        node = self.node
        if self.active is not None and not self.active.done:
            raise ProtocolError(
                f"{node.name}: update {update_id} arrived while "
                f"{self.active.update_id} is still open (coDB runs one "
                "global update at a time)"
            )
        self.active = UpdateParticipation(update_id=update_id, origin=origin)
        node.links.reset_for_update()
        for link in node.links.outgoing.values():
            link.state = OPEN
        node.wrapper.on_update_started()
        node.stats.open_report(update_id, origin, node.endpoint.now())

    def _send_request(self, update_id: str, remote: str, path: list[str]) -> None:
        node = self.node
        report = node.stats.report_for(update_id)
        pipe = node.pipes.pipe_to(remote)
        try:
            message = pipe.send(
                "update_request",
                {"update_id": update_id, "origin": self._origin(update_id), "path": path},
            )
        except UnknownPeerError:
            self.on_peer_unreachable(update_id, remote)
            return
        node.termination.note_sent(update_id, remote)
        if report is not None:
            report.messages_sent += 1
            report.bytes_sent += message.size_bytes()
            if remote not in report.queried_acquaintances and any(
                link.remote == remote for link in node.links.outgoing.values()
            ):
                report.queried_acquaintances.append(remote)

    def _origin(self, update_id: str) -> str:
        if self.active is not None and self.active.update_id == update_id:
            return self.active.origin
        return ""

    # ------------------------------------------------------------------
    # Serving incoming links
    # ------------------------------------------------------------------

    def _quarantined(self, update_id: str) -> bool:
        """§1d: a locally inconsistent node must not export its data."""
        node = self.node
        if not node.config.quarantine_inconsistent:
            return False
        if node.wrapper.is_consistent():
            return False
        report = node.stats.report_for(update_id)
        if report is not None:
            report.quarantined = True
        return True

    def _activate_links_for(self, update_id: str, requester: str) -> None:
        """First request from *requester*: run full evaluations for every
        incoming link serving it, then check immediate (leaf) closure."""
        node = self.node
        quarantined = self._quarantined(update_id)
        for link in node.links.incoming_for_target(requester):
            if link.state != INACTIVE:
                continue
            link.state = OPEN
            if quarantined:
                self._send_results(update_id, link, [], path_len=1)
                continue
            rows = self._frontier_rows(link, changed_relation=None, delta_rows=None)
            if node.config.sent_dedup:
                fresh = [row for row in rows if row not in link.sent]
                link.sent.update(fresh)
            else:
                fresh = rows
            self._send_results(update_id, link, fresh, path_len=1)
        self._cascade_closures(update_id)

    def _frontier_rows(
        self,
        link: IncomingLink,
        changed_relation: str | None,
        delta_rows: list[Row] | None,
    ) -> list[Row]:
        frontier = link.rule.frontier()
        # The rule id keys the wrapper's plan cache, so every (rule,
        # delta occurrence) body is compiled once per cardinality regime.
        bindings = self.node.wrapper.evaluate_mapping_bindings(
            link.rule.mapping,
            changed_relation=changed_relation,
            delta_rows=delta_rows,
            rule_key=link.rule_id,
        )
        return [tuple(binding[name] for name in frontier) for binding in bindings]

    def _send_results(
        self,
        update_id: str,
        link: IncomingLink,
        rows: list[Row],
        *,
        path_len: int,
        always: bool = True,
    ) -> None:
        """Ship frontier *rows* to the link's importer.

        Initial activations always send (the paper's "possibly empty
        set of tuples" — the importer's statistics rely on at least
        one result message per activated rule); delta propagation
        sends only non-empty batches.  ``config.batch_rows`` bounds the
        rows per message (§4's per-message data volume), splitting
        large results across several messages.
        """
        if not rows and not always:
            return
        node = self.node
        report = node.stats.report_for(update_id)
        pipe = node.pipes.pipe_to(link.remote)
        batch_size = node.config.batch_rows
        if batch_size <= 0 or not rows:
            batches: list[list[Row]] = [rows]
        else:
            batches = [
                rows[start:start + batch_size]
                for start in range(0, len(rows), batch_size)
            ]
        for batch in batches:
            try:
                message = pipe.send(
                    "query_result",
                    {
                        "update_id": update_id,
                        "rule_id": link.rule_id,
                        "rows": [encode_row(row) for row in batch],
                        "path_len": path_len,
                    },
                )
            except UnknownPeerError:
                self.on_peer_unreachable(update_id, link.remote)
                return
            node.termination.note_sent(update_id, link.remote)
            if report is not None:
                report.messages_sent += 1
                report.bytes_sent += message.size_bytes()
                if link.remote not in report.results_sent_to:
                    report.results_sent_to.append(link.remote)

    # ------------------------------------------------------------------
    # Ingesting results (the heart of §3)
    # ------------------------------------------------------------------

    def _ingest_results(self, message: Message) -> None:
        node = self.node
        update_id = message.payload["update_id"]
        rule_id = message.payload["rule_id"]
        path_len = int(message.payload.get("path_len", 1))
        link = node.links.outgoing.get(rule_id)
        if link is None:
            raise ProtocolError(
                f"{node.name}: query_result for unknown outgoing rule {rule_id!r}"
            )
        report = node.stats.report_for(update_id)
        rows = [decode_row(encoded) for encoded in message.payload["rows"]]

        # Dedup against what this link already delivered (multi-path
        # protection; the paper's receiver-side "remove from T those
        # tuples which are already in R" at frontier granularity, which
        # is what keeps null minting idempotent).
        fresh_frontier = [row for row in rows if row not in link.received]
        link.received.update(fresh_frontier)

        frontier_names = link.rule.frontier()
        bindings = [dict(zip(frontier_names, row)) for row in fresh_frontier]
        nulls_before = node.nulls.minted
        facts = apply_head(link.rule.mapping, bindings, node.nulls)

        # Batch ingest: group the message's head facts per relation and
        # insert each group with ONE insert_new call — the paper's
        # ``T' = T \ R`` at query_result-message granularity instead of
        # row-at-a-time.  Subsumption dedup must still see rows accepted
        # earlier in this batch (the old loop had inserted them by then):
        # a per-relation shadow Relation mirrors the accepted rows, so
        # those probes stay hash-indexed instead of scanning the batch.
        batches: dict[str, list[Row]] = {}
        subsumption = node.config.subsumption_dedup
        view = node.wrapper._view() if subsumption else None
        shadows: dict[str, Relation] = {}
        for relation, row in facts:
            pending = batches.setdefault(relation, [])
            if subsumption:
                shadow = shadows.get(relation)
                if shadow is None:
                    shadow = Relation(node.wrapper.schema[relation])
                    shadows[relation] = shadow
                if any(isinstance(value, MarkedNull) for value in row) and (
                    tuple_subsumed(row, view.relation(relation))
                    or tuple_subsumed(row, shadow)
                ):
                    continue
                shadow.insert(row)
            pending.append(row)

        deltas: dict[str, list[Row]] = {}
        inserted = 0
        for relation, pending in batches.items():
            if not pending:
                continue
            new_rows = node.wrapper.insert_new(relation, pending)
            if new_rows:
                deltas[relation] = new_rows
                inserted += len(new_rows)

        link.longest_path = max(link.longest_path, path_len)
        if report is not None:
            report.rounds += 1
            report.rows_imported += inserted
            report.nulls_minted += node.nulls.minted - nulls_before
            report.longest_path = max(report.longest_path, path_len)
            report.rule_traffic(rule_id).record(
                volume=message.payload_bytes(),
                rows=len(rows),
                new_rows=inserted,
            )
            if report.rounds > node.config.fixpoint_guard:
                raise FixpointGuardError(node.config.fixpoint_guard)

        if deltas:
            self._propagate_deltas(update_id, deltas, path_len)

    def _propagate_deltas(
        self, update_id: str, deltas: dict[str, list[Row]], path_len: int
    ) -> None:
        """Semi-naive re-evaluation of dependent incoming links (§3:
        "incoming links, which are dependent on O, are computed by
        substituting R by T'")."""
        node = self.node
        if self._quarantined(update_id):
            return
        changed = set(deltas)
        for link in node.links.incoming_dependent_on_relations(changed):
            if link.state != OPEN:
                continue  # inactive: full eval at activation sees this data
            produced: dict[Row, None] = {}
            if node.config.semi_naive:
                for relation in sorted(
                    changed & set(link.rule.mapping.body_relations())
                ):
                    for row in self._frontier_rows(
                        link, changed_relation=relation, delta_rows=deltas[relation]
                    ):
                        produced[row] = None
            else:
                # Ablation E10: recompute the link in full on every change.
                for row in self._frontier_rows(
                    link, changed_relation=None, delta_rows=None
                ):
                    produced[row] = None
            if node.config.sent_dedup:
                fresh = [row for row in produced if row not in link.sent]
                link.sent.update(fresh)
            else:
                # Ablation E10: no sent-set — resend whatever came out.
                fresh = list(produced)
            self._send_results(
                update_id, link, fresh, path_len=path_len + 1, always=False
            )

    # ------------------------------------------------------------------
    # Closure (condition (a): the cascade)
    # ------------------------------------------------------------------

    def _cascade_closures(self, update_id: str) -> None:
        node = self.node
        report = node.stats.report_for(update_id)
        progressed = True
        while progressed:
            progressed = False
            for link in node.links.incoming_ready_to_close():
                link.state = CLOSED
                link.closed_by = "cascade"
                if report is not None:
                    report.links_closed_by_cascade += 1
                pipe = node.pipes.pipe_to(link.remote)
                try:
                    message = pipe.send(
                        "link_closed",
                        {"update_id": update_id, "rule_id": link.rule_id},
                    )
                except UnknownPeerError:
                    progressed = True
                    continue  # importer left; nothing to notify
                node.termination.note_sent(update_id, link.remote)
                if report is not None:
                    report.messages_sent += 1
                    report.bytes_sent += message.size_bytes()
                progressed = True
        self._maybe_finish_locally(update_id)

    def _maybe_finish_locally(self, update_id: str) -> None:
        """Stamp the node-closure time the first moment every link is
        closed — "when all outgoing links of a node are in the state
        'closed', then the node is also in the state 'closed'" (§3)."""
        node = self.node
        report = node.stats.report_for(update_id)
        if report is None or report.status == "closed":
            return
        all_in_closed = all(
            link.state == CLOSED for link in node.links.incoming.values()
        )
        if node.links.all_outgoing_closed() and all_in_closed:
            report.status = "closed"
            report.finished_at = node.endpoint.now()

    # ------------------------------------------------------------------
    # Completion (condition (b): global quiescence)
    # ------------------------------------------------------------------

    def _finalize(self, update_id: str, forwarded_from: str | None) -> None:
        node = self.node
        if update_id in self.completed_updates:
            return
        self.completed_updates.add(update_id)
        report = node.stats.report_for(update_id)
        for link in list(node.links.outgoing.values()):
            if link.state == OPEN:
                link.state = CLOSED
                link.closed_by = "quiescence"
                if report is not None:
                    report.links_closed_by_quiescence += 1
            elif link.state == INACTIVE:
                link.state = CLOSED
        for link in list(node.links.incoming.values()):
            if link.state == OPEN:
                link.state = CLOSED
                link.closed_by = "quiescence"
                if report is not None:
                    report.links_closed_by_quiescence += 1
            elif link.state == INACTIVE:
                link.state = CLOSED
        if report is not None and report.status != "closed":
            report.status = "closed"
            report.finished_at = node.endpoint.now()
        if self.active is not None and self.active.update_id == update_id:
            self.active.done = True
            self.active = None
        node.wrapper.on_update_finished()
        node.termination.forget(update_id)
        # Flood the completion (non-engaging; dedup via completed_updates).
        for remote in node.pipes.remotes():
            if remote != forwarded_from:
                pipe = node.pipes.pipe_to(remote)
                try:
                    pipe.send("update_complete", {"update_id": update_id})
                except UnknownPeerError:
                    continue  # departed peers need no completion notice

    # ------------------------------------------------------------------
    # Dynamic networks (§1: nodes may disappear mid-computation)
    # ------------------------------------------------------------------

    def on_peer_unreachable(self, update_id: str, dead_peer: str) -> None:
        """Close every link toward a peer that left the network.

        Called when a protocol message to *dead_peer* bounced (or its
        send failed outright).  Outgoing links toward it will never
        deliver results or closure notifications; incoming links toward
        it have nobody left to serve.  Both close with
        ``closed_by="failure"`` so the closure cascade — and therefore
        the whole update — still terminates.
        """
        node = self.node
        if self.active is None or self.active.update_id != update_id:
            return
        report = node.stats.report_for(update_id)
        changed = False
        for link in node.links.outgoing.values():
            if link.remote == dead_peer and link.state != CLOSED:
                link.state = CLOSED
                link.closed_by = "failure"
                changed = True
        for link in node.links.incoming.values():
            if link.remote == dead_peer and link.state != CLOSED:
                link.state = CLOSED
                link.closed_by = "failure"
                changed = True
        if changed and report is not None:
            report.links_closed_by_failure += 1
        if changed:
            self._cascade_closures(update_id)
        # If the failure cut us off from the origin, its completion
        # flood may never reach us.  Once every local link is closed
        # and we are disengaged from the computation, the update is
        # over *for this node* (the paper's node-closure condition),
        # so finalize locally and let our own completion flood cover
        # whatever part of the network is still reachable through us.
        if (
            report is not None
            and report.status == "closed"
            and not node.termination.is_engaged(update_id)
            and update_id not in self.completed_updates
        ):
            self._finalize(update_id, forwarded_from=None)

    # ------------------------------------------------------------------

    def is_done(self, update_id: str) -> bool:
        return update_id in self.completed_updates
