"""The global update algorithm (§3 of the paper, [Franconi et al., 2004]).

The DBM "serves, in general, many requests concurrently" (§3): any
number of global updates — one per origin — may propagate through the
network at the same time.  Each node therefore runs one
:class:`UpdateEngine` **session** per active update id, created lazily
on first contact and garbage-collected on completion; the
:class:`UpdateManager` is the registry that owns the sessions and
dispatches the :data:`UPDATE_KINDS` messages to them.

Protocol recap, with the paper's vocabulary (everything below is per
update id, i.e. per session):

* The origin node floods ``update_request`` messages over its pipes;
  every node, on first contact with that update id, opens a session,
  forwards the request to all its acquaintances ("propagate the global
  update to their acquaintances") and dedups re-receipts by the update
  identifier ("propagation is stopped ... if that node has already
  received this request message").
* A request from acquaintance *t* **activates** the session's view of
  every incoming link serving *t*: the node "executes the coordination
  rule and sends the results back" — the body is evaluated over the
  full local database, projected onto the rule's frontier variables,
  deduplicated against the session's per-link *sent* set, and shipped
  as a ``query_result``.
* A ``query_result`` arriving over outgoing link *O* carries frontier
  rows.  Rows new *to this session* (dedup against the session's
  per-link *received* set — "we first remove from T those tuples which
  are already in R") are candidates for firing; rows that ever fired
  the rule at this node (the shared link's lifetime ``fired`` set)
  are skipped, which keeps "fresh new marked null values" idempotent
  across repeated updates *and* across concurrent sessions delivering
  the same row.  Genuinely new tuples (``T'``) are inserted, and every
  *dependent* incoming link that is open in this session is
  re-evaluated **semi-naively** — "computed by substituting R by T'" —
  with the session's sent-set removing "those tuples which have been
  already sent".
* Link closure, the paper's condition (a): an incoming link closes
  (in this session) when every relevant outgoing link of this session
  is closed (leaf links close right after their initial results); a
  ``link_closed`` message closes the matching outgoing link at the
  importer's session, cascading network-wide through acyclic
  dependencies.
* Cyclic dependencies cannot close by cascade.  They close via the
  paper's condition (b) — "all query results did not bring any new
  data" — detected exactly by the Dijkstra–Scholten machinery of
  :mod:`repro.core.termination`, which already multiplexes one
  instance per computation id, so N concurrent updates run N
  independent diffusing computations.  When an origin detects global
  quiescence of *its* computation it floods ``update_complete``, and
  every node force-closes that session's remaining links (recorded as
  ``closed_by="quiescence"``) and garbage-collects the session.

Correctness under concurrency: the local databases are shared and grow
monotonically; each session is an independent propagation wave whose
deltas it carries to quiescence itself, and the lifetime ``fired`` set
(plus optional marked-null subsumption) makes rule firing confluent.
N concurrent updates therefore converge to databases equivalent — up
to a renaming of marked nulls — to some sequential execution; the
randomized differential tests in
``tests/core/test_concurrent_updates.py`` enforce exactly that on both
transports.

Sessions are driven entirely by message handlers, so they run
unchanged on the simulated and the TCP transport; over TCP the node's
lock serialises handler execution with driver-thread calls, giving the
same actor discipline as the simulator.

Admission control: with ``NodeConfig.max_active_sessions`` set, the
node's :class:`~repro.core.requests.AdmissionControl` bounds how many
sessions run at once.  Local initiations queue as pending starts;
remote session-creating messages are deferred un-acked (keeping the
sender's Dijkstra–Scholten deficit open, so the computation waits for
the queued participant instead of falsely quiescing) and replayed in
global update-id seniority order as sessions finish.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.links import CLOSED, INACTIVE, OPEN, IncomingLink, LinkSession
from repro.errors import FixpointGuardError, ProtocolError, UnknownPeerError
from repro.p2p.messages import Message
from repro.relational.containment import tuple_subsumed
from repro.relational.evaluation import apply_head
from repro.relational.storage import Relation
from repro.relational.values import (
    MarkedNull,
    Row,
    decode_row,
    encode_row,
    row_key,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import CoDBNode

#: Message kinds owned by the update manager.
UPDATE_KINDS = ("update_request", "query_result", "link_closed", "update_complete")


class UpdateEngine:
    """One node's participation in ONE global update — a session.

    Holds the per-update view of the node's links (activation states,
    closure causes, sent/received dedup sets) and implements the §3
    data flow.  All cross-session facilities — the store, the link
    topology, the lifetime ``fired`` sets, termination bookkeeping and
    statistics — are reached through the owning node and are keyed (or
    confluent) per update id.
    """

    def __init__(self, node: "CoDBNode", update_id: str, origin: str) -> None:
        self.node = node
        self.update_id = update_id
        self.origin = origin
        self.links = LinkSession(node.links)
        #: A peer relevant to this session died or became unreachable.
        #: The failure may have severed our path to the origin, whose
        #: completion flood would then never reach us — so once every
        #: link is closed and we are disengaged, we finalize locally
        #: (see :meth:`UpdateManager.maybe_finalize_after_failure`).
        self.peer_lost = False

    # ------------------------------------------------------------------
    # Outbound plumbing
    # ------------------------------------------------------------------

    def send_request(self, remote: str, path: list[str]) -> None:
        node = self.node
        update_id = self.update_id
        report = node.stats.report_for(update_id)
        pipe = node.pipes.pipe_to(remote)
        try:
            message = pipe.send(
                "update_request",
                {"update_id": update_id, "origin": self.origin, "path": path},
            )
        except UnknownPeerError:
            self.on_peer_unreachable(remote)
            return
        node.termination.note_sent(update_id, remote)
        if report is not None:
            report.messages_sent += 1
            report.bytes_sent += message.size_bytes()
            if remote not in report.queried_acquaintances and any(
                link.remote == remote for link in node.links.outgoing.values()
            ):
                report.queried_acquaintances.append(remote)

    # ------------------------------------------------------------------
    # Serving incoming links
    # ------------------------------------------------------------------

    def _quarantined(self) -> bool:
        """§1d: a locally inconsistent node must not export its data."""
        node = self.node
        if not node.config.quarantine_inconsistent:
            return False
        if node.wrapper.is_consistent():
            return False
        report = node.stats.report_for(self.update_id)
        if report is not None:
            report.quarantined = True
        return True

    def activate_links_for(self, requester: str) -> None:
        """First request from *requester*: run full evaluations for every
        incoming link serving it, then check immediate (leaf) closure."""
        node = self.node
        quarantined = self._quarantined()
        for link, state in self.links.incoming_for_target(requester):
            if state.state != INACTIVE:
                continue
            state.state = OPEN
            link.state = OPEN  # diagnostic mirror
            if quarantined:
                self._send_results(link, [], path_len=1)
                continue
            rows = self._frontier_rows(link, changed_relation=None, delta_rows=None)
            if node.config.sent_dedup:
                fresh = [row for row in rows if not state.has_seen(row)]
                for row in fresh:
                    state.mark_seen(row)
            else:
                fresh = rows
            fresh = self._suppress_taught(link, state, fresh)
            self._send_results(link, fresh, path_len=1)
        self.cascade_closures()

    def _suppress_taught(
        self, link: IncomingLink, state, rows: list[Row]
    ) -> list[Row]:
        """Teach-forward resend suppression: skip rows the link's
        lifetime ``pushed`` memory says a previous update (or the push
        engine) already delivered — the importer's lifetime ``fired``
        set would drop them anyway.  Rows we do ship are taught to the
        memory, tagged in the session's ``lifetime_new`` so a failure
        closure can forget them again (the healed network's next
        update must re-ship).  Gated on ``sent_dedup`` too: the E10
        ablation measures resends and must not be masked.
        """
        node = self.node
        if not (node.config.resend_suppression and node.config.sent_dedup):
            return rows
        to_ship = []
        for row in rows:
            key = row_key(row)
            if key in link.pushed:
                continue
            link.pushed.add(key)
            state.lifetime_new.add(key)
            to_ship.append(row)
        suppressed = len(rows) - len(to_ship)
        if suppressed:
            report = node.stats.report_for(self.update_id)
            if report is not None:
                report.rows_suppressed += suppressed
        return to_ship

    def _frontier_rows(
        self,
        link: IncomingLink,
        changed_relation: str | None,
        delta_rows: list[Row] | None,
    ) -> list[Row]:
        frontier = link.rule.frontier()
        # The rule id keys the wrapper's plan cache, so every (rule,
        # delta occurrence) body is compiled once per cardinality regime.
        bindings = self.node.wrapper.evaluate_mapping_bindings(
            link.rule.mapping,
            changed_relation=changed_relation,
            delta_rows=delta_rows,
            rule_key=link.rule_id,
        )
        return [tuple(binding[name] for name in frontier) for binding in bindings]

    def _send_results(
        self,
        link: IncomingLink,
        rows: list[Row],
        *,
        path_len: int,
        always: bool = True,
    ) -> None:
        """Ship frontier *rows* to the link's importer.

        Initial activations always send (the paper's "possibly empty
        set of tuples" — the importer's statistics rely on at least
        one result message per activated rule); delta propagation
        sends only non-empty batches.  ``config.batch_rows`` bounds the
        rows per message (§4's per-message data volume), splitting
        large results across several messages.
        """
        if not rows and not always:
            return
        node = self.node
        update_id = self.update_id
        report = node.stats.report_for(update_id)
        pipe = node.pipes.pipe_to(link.remote)
        batch_size = node.config.batch_rows
        if batch_size <= 0 or not rows:
            batches: list[list[Row]] = [rows]
        else:
            batches = [
                rows[start:start + batch_size]
                for start in range(0, len(rows), batch_size)
            ]
        for batch in batches:
            try:
                message = pipe.send(
                    "query_result",
                    {
                        "update_id": update_id,
                        "rule_id": link.rule_id,
                        "rows": [encode_row(row) for row in batch],
                        "path_len": path_len,
                    },
                )
            except UnknownPeerError:
                self.on_peer_unreachable(link.remote)
                return
            node.termination.note_sent(update_id, link.remote)
            if report is not None:
                report.messages_sent += 1
                report.bytes_sent += message.size_bytes()
                if link.remote not in report.results_sent_to:
                    report.results_sent_to.append(link.remote)

    # ------------------------------------------------------------------
    # Ingesting results (the heart of §3)
    # ------------------------------------------------------------------

    def ingest_results(self, message: Message) -> None:
        node = self.node
        update_id = self.update_id
        rule_id = message.payload["rule_id"]
        path_len = int(message.payload.get("path_len", 1))
        link = node.links.outgoing.get(rule_id)
        if link is None:
            raise ProtocolError(
                f"{node.name}: query_result for unknown outgoing rule {rule_id!r}"
            )
        state = self.links.outgoing_state(rule_id)
        report = node.stats.report_for(update_id)
        rows = [decode_row(encoded) for encoded in message.payload["rows"]]

        # Two dedup layers.  The session's received-set is multi-path
        # protection within THIS update ("remove from T those tuples
        # which are already in R" at frontier granularity); the shared
        # link's lifetime fired-set spans updates and concurrent
        # sessions, and is what keeps null minting idempotent: a
        # frontier row instantiates the head at most once per link
        # lifetime, no matter how many sessions deliver it.
        fresh_frontier = [row for row in rows if not state.has_seen(row)]
        for row in fresh_frontier:
            state.mark_seen(row)
        to_fire = [row for row in fresh_frontier if not link.has_fired(row)]
        for row in to_fire:
            link.mark_fired(row)

        frontier_names = link.rule.frontier()
        bindings = [dict(zip(frontier_names, row)) for row in to_fire]
        nulls_before = node.nulls.minted
        facts = apply_head(link.rule.mapping, bindings, node.nulls)

        # Batch ingest: group the message's head facts per relation and
        # insert each group with ONE insert_new call — the paper's
        # ``T' = T \ R`` at query_result-message granularity instead of
        # row-at-a-time.  Subsumption dedup must still see rows accepted
        # earlier in this batch (the old loop had inserted them by then):
        # a per-relation shadow Relation mirrors the accepted rows, so
        # those probes stay hash-indexed instead of scanning the batch.
        batches: dict[str, list[Row]] = {}
        subsumption = node.config.subsumption_dedup
        view = node.wrapper._view() if subsumption else None
        shadows: dict[str, Relation] = {}
        for relation, row in facts:
            pending = batches.setdefault(relation, [])
            if subsumption:
                shadow = shadows.get(relation)
                if shadow is None:
                    shadow = Relation(node.wrapper.schema[relation])
                    shadows[relation] = shadow
                if any(isinstance(value, MarkedNull) for value in row) and (
                    tuple_subsumed(row, view.relation(relation))
                    or tuple_subsumed(row, shadow)
                ):
                    continue
                shadow.insert(row)
            pending.append(row)

        deltas: dict[str, list[Row]] = {}
        inserted = 0
        for relation, pending in batches.items():
            if not pending:
                continue
            new_rows = node.wrapper.insert_new(relation, pending)
            if new_rows:
                deltas[relation] = new_rows
                inserted += len(new_rows)

        state.longest_path = max(state.longest_path, path_len)
        link.longest_path = max(link.longest_path, path_len)
        if report is not None:
            report.rounds += 1
            report.rows_imported += inserted
            report.nulls_minted += node.nulls.minted - nulls_before
            report.longest_path = max(report.longest_path, path_len)
            report.rule_traffic(rule_id).record(
                volume=message.payload_bytes(),
                rows=len(rows),
                new_rows=inserted,
            )
            if report.rounds > node.config.fixpoint_guard:
                raise FixpointGuardError(node.config.fixpoint_guard)

        if deltas:
            node.bump_epochs(deltas)
            self._propagate_deltas(deltas, path_len)

    def _propagate_deltas(
        self, deltas: dict[str, list[Row]], path_len: int
    ) -> None:
        """Semi-naive re-evaluation of dependent incoming links (§3:
        "incoming links, which are dependent on O, are computed by
        substituting R by T'").

        Only links open *in this session* re-fire; another session's
        open view of the same link propagates its own deltas itself
        (its data flow inserted them), so nothing is lost and nothing
        is sent twice under one update id.
        """
        node = self.node
        if self._quarantined():
            return
        changed = set(deltas)
        for link, state in self.links.incoming_dependent_on_relations(changed):
            if state.state != OPEN:
                continue  # inactive: full eval at activation sees this data
            produced: dict[Row, None] = {}
            if node.config.semi_naive:
                for relation in sorted(
                    changed & set(link.rule.mapping.body_relations())
                ):
                    for row in self._frontier_rows(
                        link, changed_relation=relation, delta_rows=deltas[relation]
                    ):
                        produced[row] = None
            else:
                # Ablation E10: recompute the link in full on every change.
                for row in self._frontier_rows(
                    link, changed_relation=None, delta_rows=None
                ):
                    produced[row] = None
            if node.config.sent_dedup:
                fresh = [row for row in produced if not state.has_seen(row)]
                for row in fresh:
                    state.mark_seen(row)
            else:
                # Ablation E10: no sent-set — resend whatever came out.
                fresh = list(produced)
            fresh = self._suppress_taught(link, state, fresh)
            self._send_results(link, fresh, path_len=path_len + 1, always=False)

    # ------------------------------------------------------------------
    # Closure (condition (a): the cascade)
    # ------------------------------------------------------------------

    def close_outgoing_by_cascade(self, rule_id: str) -> None:
        state = self.links.outgoing_state(rule_id)
        if state.state != CLOSED:
            self.links.close_outgoing(rule_id, "cascade")

    def cascade_closures(self) -> None:
        node = self.node
        update_id = self.update_id
        report = node.stats.report_for(update_id)
        progressed = True
        while progressed:
            progressed = False
            for link, _state in self.links.incoming_ready_to_close():
                self.links.close_incoming(link.rule_id, "cascade")
                if report is not None:
                    report.links_closed_by_cascade += 1
                pipe = node.pipes.pipe_to(link.remote)
                try:
                    message = pipe.send(
                        "link_closed",
                        {"update_id": update_id, "rule_id": link.rule_id},
                    )
                except UnknownPeerError:
                    progressed = True
                    continue  # importer left; nothing to notify
                node.termination.note_sent(update_id, link.remote)
                if report is not None:
                    report.messages_sent += 1
                    report.bytes_sent += message.size_bytes()
                progressed = True
        self.maybe_finish_locally()

    def maybe_finish_locally(self) -> None:
        """Stamp the node-closure time the first moment every link is
        closed — "when all outgoing links of a node are in the state
        'closed', then the node is also in the state 'closed'" (§3)."""
        node = self.node
        report = node.stats.report_for(self.update_id)
        if report is None or report.status == "closed":
            return
        if self.links.all_outgoing_closed() and self.links.all_incoming_closed():
            report.status = "closed"
            report.finished_at = node.endpoint.now()

    # ------------------------------------------------------------------
    # Completion (condition (b): global quiescence)
    # ------------------------------------------------------------------

    def force_close_remaining(self) -> None:
        """Completion flood arrived: close whatever is still open."""
        report = self.node.stats.report_for(self.update_id)
        for link, state in self.links.outgoing_items():
            if state.state == OPEN:
                self.links.close_outgoing(link.rule_id, "quiescence")
                if report is not None:
                    report.links_closed_by_quiescence += 1
            elif state.state == INACTIVE:
                self.links.close_outgoing(link.rule_id, "")
        for link, state in self.links.incoming_items():
            if state.state == OPEN:
                self.links.close_incoming(link.rule_id, "quiescence")
                if report is not None:
                    report.links_closed_by_quiescence += 1
            elif state.state == INACTIVE:
                self.links.close_incoming(link.rule_id, "")
        if report is not None and report.status != "closed":
            report.status = "closed"
            report.finished_at = self.node.endpoint.now()

    # ------------------------------------------------------------------
    # Dynamic networks (§1: nodes may disappear mid-computation)
    # ------------------------------------------------------------------

    def on_peer_unreachable(self, dead_peer: str) -> None:
        """Close this session's links toward a peer that left.

        Outgoing links toward it will never deliver results or closure
        notifications; incoming links toward it have nobody left to
        serve.  Both close with ``closed_by="failure"`` so the closure
        cascade — and therefore this update — still terminates.
        """
        node = self.node
        update_id = self.update_id
        report = node.stats.report_for(update_id)
        changed = False
        relevant = False
        for link, state in self.links.outgoing_items():
            if link.remote != dead_peer:
                continue
            relevant = True
            if state.state != CLOSED:
                self.links.close_outgoing(link.rule_id, "failure")
                changed = True
        for link, state in self.links.incoming_items():
            if link.remote != dead_peer:
                continue
            relevant = True
            if state.state != CLOSED:
                self.links.close_incoming(link.rule_id, "failure")
                changed = True
            else:
                # The link closed cleanly, then a shipment toward the
                # importer bounced: the rows it taught the lifetime
                # sent memory never arrived, so forget them.
                self.links.rollback_taught(link.rule_id)
        # Arm self-finalization only when the dead peer actually
        # touches this session (it is an acquaintance on some rule —
        # and therefore possibly our only route to the origin).  An
        # unrelated peer's death must NOT arm it: a closed+disengaged
        # branch would prematurely flood completion and truncate the
        # still-streaming rest of a healthy update.
        if relevant:
            self.peer_lost = True
            # Reachability changed under this session: the answer
            # cache floods (bump_all) and the interest protocol toward
            # the lost peer resets, same as a failure-detector notice.
            node.cache_fault_fallback(dead_peer)
            if report is not None:
                # The §4 report must say what went missing, not
                # silently truncate: this node's view of the update is
                # now "partial", naming the peer it lost.
                report.note_unreachable(dead_peer)
        if changed and report is not None:
            report.links_closed_by_failure += 1
        if changed:
            self.cascade_closures()
        # If the failure cut us off from the origin, its completion
        # flood may never reach us.  Once every local link is closed
        # and we are disengaged from the computation, the update is
        # over *for this node* (the paper's node-closure condition),
        # so finalize locally and let our own completion flood cover
        # whatever part of the network is still reachable through us.
        node.updates.maybe_finalize_after_failure(update_id)


class UpdateManager:
    """The session registry: one :class:`UpdateEngine` per active update.

    Owns message dispatch for :data:`UPDATE_KINDS`, session creation on
    first contact, the completed-update dedup set (stale flood tails
    after completion are acked and dropped), and garbage collection of
    finished sessions.
    """

    def __init__(self, node: "CoDBNode") -> None:
        self.node = node
        self.sessions: dict[str, UpdateEngine] = {}
        self.completed_updates: set[str] = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def is_done(self, update_id: str) -> bool:
        return update_id in self.completed_updates

    def active_ids(self) -> list[str]:
        return list(self.sessions)

    def session(self, update_id: str) -> UpdateEngine | None:
        return self.sessions.get(update_id)

    # ------------------------------------------------------------------
    # Initiation
    # ------------------------------------------------------------------

    def submit(self) -> str:
        """Submit a global update at this node; returns the update id.

        "A global update is started when some (dedicated) node sends to
        all its acquaintances global update requests" (§2); the unique
        identifier is generated here, at the origin.  Any number of
        updates (from this or other origins) may already be running.
        When the node's admission cap is reached the update waits in
        the admission queue as a pending initiation — the id exists
        (and is cancellable through its handle) but the flood has not
        started.
        """
        node = self.node
        update_id = node.endpoint.ids.update_id()
        if node.admission.try_enter(update_id, "update", initiation=True):
            self._start_root(update_id)
        else:
            node.admission.defer_initiation(
                update_id, "update", lambda: self._start_root(update_id)
            )
        return update_id

    #: Pre-handle-API name, kept for callers that expect an immediate id.
    initiate = submit

    def cancel(self, update_id: str) -> bool:
        """Withdraw *update_id* if it is still queued behind admission."""
        return self.node.admission.cancel(update_id)

    def _start_root(self, update_id: str) -> None:
        node = self.node
        node.termination.start_root(update_id)
        session = self._begin_session(update_id, origin=node.name)
        for remote in node.pipes.remotes():
            session.send_request(remote, path=[node.name])
        node.termination.check_quiescence(update_id)

    def _begin_session(self, update_id: str, origin: str) -> UpdateEngine:
        node = self.node
        session = UpdateEngine(node, update_id, origin)
        self.sessions[update_id] = session
        session.links.open_all_outgoing()
        node.wrapper.on_update_started()
        node.stats.open_report(update_id, origin, node.endpoint.now())
        return session

    # ------------------------------------------------------------------
    # Handlers (wired by the node)
    # ------------------------------------------------------------------

    def on_update_request(self, message: Message) -> None:
        update_id = message.payload["update_id"]
        if update_id in self.completed_updates:
            # Stale flood tail after completion; nothing to do, but the
            # sender still gets its ack so its deficit drains.
            self.node.send_ack(message.sender, update_id)
            return
        if update_id not in self.sessions and not self.node.admission.try_enter(
            update_id, "update"
        ):
            # Admission cap reached: defer the session-creating message
            # un-acked (the sender's deficit keeps the computation
            # alive); it replays when a slot frees.
            self.node.admission.defer_message(
                update_id, "update", message, self._process_update_request
            )
            return
        self._process_update_request(message)

    def _process_update_request(self, message: Message) -> None:
        update_id = message.payload["update_id"]
        node = self.node
        tree = node.termination.on_engaging_message(update_id, message.sender)
        session = self.sessions.get(update_id)
        first_contact = session is None
        if first_contact:
            origin = message.payload["origin"]
            path = list(message.payload.get("path", ()))
            session = self._begin_session(update_id, origin=origin)
            forward_path = path + [node.name]
            targets = [
                remote
                for remote in node.pipes.remotes()
                if remote != message.sender
            ]
            # The flood proper excludes the sender, but if we *import*
            # from the sender we must still request from it: its
            # incoming links toward us only activate on our explicit
            # request (this is what makes mutual imports — cycles of
            # length two — work).
            if any(
                link.remote == message.sender
                for link in node.links.outgoing.values()
            ):
                targets.append(message.sender)
            for remote in targets:
                session.send_request(remote, path=forward_path)
        session.activate_links_for(message.sender)
        node.termination.after_processing(update_id, message.sender, tree)
        # A reordered flood tail from an origin that already died can
        # create a session whose every send fails synchronously (the
        # links close with "failure" and no bounce will ever arrive to
        # re-check) — this is the session's last chance to self-close.
        self.maybe_finalize_after_failure(update_id)

    def on_query_result(self, message: Message) -> None:
        update_id = message.payload["update_id"]
        session = self.sessions.get(update_id)
        if session is None:
            if self.node.admission.is_deferred(update_id):
                # Session not admitted yet: queue the data behind the
                # deferred request so replay preserves arrival order.
                self.node.admission.defer_message(
                    update_id, "update", message, self.on_query_result
                )
                return
            # Completed here (or arrived after a failure-finalize):
            # the data flowed under another still-open session or is
            # already stored; ack so the sender's deficit drains.
            self.node.send_ack(message.sender, update_id)
            return
        tree = self.node.termination.on_engaging_message(update_id, message.sender)
        session.ingest_results(message)
        self.node.termination.after_processing(update_id, message.sender, tree)
        self.maybe_finalize_after_failure(update_id)

    def on_link_closed(self, message: Message) -> None:
        update_id = message.payload["update_id"]
        session = self.sessions.get(update_id)
        if session is None:
            if self.node.admission.is_deferred(update_id):
                self.node.admission.defer_message(
                    update_id, "update", message, self.on_link_closed
                )
                return
            self.node.send_ack(message.sender, update_id)
            return
        tree = self.node.termination.on_engaging_message(update_id, message.sender)
        rule_id = message.payload["rule_id"]
        if rule_id not in self.node.links.outgoing:
            raise ProtocolError(
                f"{self.node.name}: link_closed for unknown outgoing "
                f"rule {rule_id!r}"
            )
        session.close_outgoing_by_cascade(rule_id)
        session.cascade_closures()
        session.maybe_finish_locally()
        self.node.termination.after_processing(update_id, message.sender, tree)
        self.maybe_finalize_after_failure(update_id)

    def on_update_complete(self, message: Message) -> None:
        update_id = message.payload["update_id"]
        cause = message.payload.get("cause", "origin")
        if cause == "failure":
            # A *failure*-triggered completion flood is not the root's
            # condition (b): it is a severed component announcing "the
            # update is over for us".  A session here that is still
            # active — engaged, or with open links — may well have a
            # healthy route to the origin with data still in flight;
            # finalizing it now would force-close live links and drop
            # that data (and at the root it would complete the whole
            # update prematurely).  Instead the flood *arms* the
            # session: once it too is closed and disengaged it
            # finalizes, and forwards the flood then.
            session = self.sessions.get(update_id)
            if session is not None:
                report = self.node.stats.report_for(update_id)
                if (
                    self.node.termination.is_engaged(update_id)
                    or report is None
                    or report.status != "closed"
                ):
                    session.peer_lost = True
                    return
        self.finalize(
            update_id, forwarded_from=message.sender, cause=cause
        )

    def maybe_finalize_after_failure(self, update_id: str) -> None:
        """Self-finalize a failure-touched session once it is over here.

        A session that lost a peer (``UpdateEngine.peer_lost``) may be
        cut off from its origin — the completion flood would then never
        arrive (the dead node was the only route).  The paper's node-
        closure condition says the update is over *for this node* once
        every link is closed; combined with Dijkstra–Scholten
        disengagement (we owe no acks, nobody owes us) it is safe to
        finalize locally and let our own ``cause="failure"`` flood
        cover whatever part of the network is still reachable through
        us (recipients that are still active merely arm themselves,
        see :meth:`on_update_complete` — the flood cannot truncate a
        healthy branch).  Called at passive moments only (handler
        tails, after the termination bookkeeping for the message has
        fully run); a no-op for sessions that never saw a failure.
        """
        session = self.sessions.get(update_id)
        if session is None or not session.peer_lost:
            return
        report = self.node.stats.report_for(update_id)
        if (
            report is not None
            and report.status == "closed"
            and not self.node.termination.is_engaged(update_id)
        ):
            self.finalize(update_id, forwarded_from=None, cause="failure")

    def root_complete(self, update_id: str) -> None:
        """Termination detected at the origin (condition (b) globally)."""
        self.finalize(update_id, forwarded_from=None)

    # ------------------------------------------------------------------
    # Completion & garbage collection
    # ------------------------------------------------------------------

    def finalize(
        self,
        update_id: str,
        forwarded_from: str | None,
        cause: str = "origin",
    ) -> None:
        node = self.node
        if update_id in self.completed_updates:
            return
        self.completed_updates.add(update_id)
        session = self.sessions.pop(update_id, None)  # GC the session
        if session is not None:
            session.force_close_remaining()
            node.wrapper.on_update_finished()
        # The update may have completed globally while still queued
        # behind admission here (a failure cut us out of it): drop the
        # queue entry and ack its deferred messages so the senders'
        # deficits drain.
        for stray in node.admission.drop(update_id):
            node.send_ack(stray.sender, update_id)
        node.termination.forget(update_id)
        # Flood the completion (non-engaging; dedup via completed_updates).
        # The cause travels with it: failure-triggered floods must not
        # finalize still-active sessions downstream (they arm instead).
        for remote in node.pipes.remotes():
            if remote != forwarded_from:
                pipe = node.pipes.pipe_to(remote)
                try:
                    pipe.send(
                        "update_complete",
                        {"update_id": update_id, "cause": cause},
                    )
                except UnknownPeerError:
                    continue  # departed peers need no completion notice
        # Free this session's admission slot (drains the queue) and
        # signal completion to any request handles / waiting drivers.
        node.admission.release(update_id)
        node.notify_request_complete("update", update_id)

    # ------------------------------------------------------------------
    # Dynamic networks
    # ------------------------------------------------------------------

    def on_peer_unreachable(self, update_id: str, dead_peer: str) -> None:
        session = self.sessions.get(update_id)
        if session is not None:
            session.on_peer_unreachable(dead_peer)

    def on_peer_down(self, dead_peer: str) -> None:
        """Failure-detector notification: close links toward *dead_peer*
        in every active session (each may finalize itself)."""
        for update_id in list(self.sessions):
            self.on_peer_unreachable(update_id, dead_peer)

    def on_rules_changed(self) -> None:
        """Runtime rewire (§4): rebind every live session to the new
        link table.  Surviving rules keep their session state; new
        rules start INACTIVE in every session."""
        for session in self.sessions.values():
            session.links.rebind(self.node.links)
