"""Query-time distributed answering (§3, [Franconi et al., 2003]).

"Given a P2P database system, the answer to a local query may involve
data that is distributed in the network, thus requiring the
participation of all nodes at query time to propagate in the
direction of the query node the relevant data for the answer" (§1).

Mechanics, per §3: "When node gets a query request, it answers it
using local data immediately, and it forwards it through all outgoing
links.  Each query request is labelled by a sequence of IDs of nodes
it passed through.  A node does not propagate a query request, if its
ID is contained in the label of query request."

Our implementation follows that text with one pragmatic narrowing:
requests are only forwarded through outgoing links *relevant* to the
data being assembled (the link's head writes a relation some
activated rule's body reads — the same dependency relation the update
algorithm uses).  Forwarding through provably irrelevant links could
only import data the query cannot see.

Differences from the global update, both inherent to the paper's
design:

* propagation follows **simple paths** (the label cut), so on cyclic
  rule sets a network query computes the simple-path-bounded answer,
  whereas the global update runs the full fix-point — experiment E7
  exhibits the gap;
* fetched data *migrates* into the nodes on the way (the paper's
  data-migration role of coordination formulas).  ``persist=False``
  rolls the imported tuples back after the answer is computed, so
  repeated-query experiments (E6) measure steady-state query cost.

Termination is again Dijkstra–Scholten, rooted at the querying node;
when the root detects quiescence it evaluates the query locally and
floods ``query_complete`` along the request tree for cleanup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ProtocolError, UnknownPeerError
from repro.p2p.messages import Message
from repro.relational.conjunctive import ConjunctiveQuery
from repro.relational.evaluation import apply_head
from repro.relational.values import Row, decode_row, encode_row, row_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import CoDBNode

QUERY_KINDS = ("query_request", "query_data", "query_complete")


@dataclass
class QueryParticipation:
    """One node's volatile state for one network query."""

    query_id: str
    origin: str
    persist: bool
    #: Incoming-link rule ids activated for this query, with sent-sets
    #: (frontier row keys — the engine's type-strict identity).
    sent: dict[str, set] = field(default_factory=dict)
    #: Outgoing-link rule ids requested, with received-sets (row keys).
    received: dict[str, set] = field(default_factory=dict)
    #: Rows this query imported here (rollback when not persist).
    inserted: list[tuple[str, Row]] = field(default_factory=list)
    #: Neighbours we forwarded requests to (cleanup flood follows them).
    forwarded_to: list[str] = field(default_factory=list)
    done: bool = False


@dataclass
class RootQuery:
    """Extra state on the querying node."""

    query: ConjunctiveQuery
    answer: list[Row] | None = None
    messages_used: int = 0
    #: Answer-cache fingerprint to fill at completion (``None`` when
    #: this query is uncached — ablated, ``cache=False``, or
    #: non-persistent, whose rollback would invalidate the fill
    #: immediately anyway).
    cache_fill: str | None = None


class QueryEngine:
    """Query-time answering for one node."""

    def __init__(self, node: "CoDBNode") -> None:
        self.node = node
        self.participations: dict[str, QueryParticipation] = {}
        self.roots: dict[str, RootQuery] = {}

    # ------------------------------------------------------------------
    # Root side
    # ------------------------------------------------------------------

    def submit(
        self,
        query: ConjunctiveQuery,
        *,
        persist: bool = True,
        cache: bool | None = None,
    ) -> str:
        """Pose *query* network-wide; returns the query id.

        The root query is a session like a global update: it holds
        per-query state (the :class:`RootQuery` plus this node's
        :class:`QueryParticipation`), counts against the node's
        admission cap, and completes event-driven — the answer becomes
        available via :meth:`answer` once the diffusing computation
        quiesces.  Under admission pressure the root waits in the
        node's queue as a pending initiation (cancellable through its
        handle).

        ``cache`` overrides ``NodeConfig.answer_cache`` for this query
        (``None`` inherits it).  A cached answer with every stamped
        epoch intact is served immediately, with no propagation at
        all; a miss runs the full diffusing computation and fills the
        cache at completion.  Only persistent queries are cached — a
        non-persistent query's own rollback deletes would invalidate
        the entry before it could ever be served.
        """
        node = self.node
        query.validate_against(node.wrapper.schema)
        use_cache = node.config.answer_cache if cache is None else cache
        use_cache = use_cache and persist
        fingerprint = f"network:{query!r}"
        query_id = node.endpoint.ids.query_id()
        node.stats.network_queries_started += 1
        if use_cache:
            hit = node.cache.get(fingerprint)
            if hit is not None:
                self.roots[query_id] = RootQuery(
                    query=query, answer=list(hit)
                )
                node.notify_request_complete("query", query_id)
                return query_id
        root = RootQuery(query=query)
        if use_cache:
            root.cache_fill = fingerprint
        self.roots[query_id] = root
        if node.admission.try_enter(query_id, "query", initiation=True):
            self._start_root(query_id, query, persist)
        else:
            node.admission.defer_initiation(
                query_id,
                "query",
                lambda: self._start_root(query_id, query, persist),
            )
        return query_id

    #: Pre-handle-API name, kept for existing callers.
    start = submit

    def cancel(self, query_id: str) -> bool:
        """Withdraw *query_id* if it is still queued behind admission."""
        if not self.node.admission.cancel(query_id):
            return False
        self.roots.pop(query_id, None)
        return True

    def _start_root(
        self, query_id: str, query: ConjunctiveQuery, persist: bool
    ) -> None:
        node = self.node
        node.termination.start_root(query_id)
        participation = QueryParticipation(
            query_id=query_id, origin=node.name, persist=persist
        )
        self.participations[query_id] = participation
        needed = set(query.body_relations())
        self._forward_requests(participation, needed, label=[node.name])
        node.termination.check_quiescence(query_id)

    def answer(self, query_id: str) -> list[Row] | None:
        """The answer rows, or ``None`` while the query is in flight."""
        root = self.roots.get(query_id)
        if root is None:
            raise ProtocolError(f"unknown query {query_id!r}")
        return root.answer

    def is_done(self, query_id: str) -> bool:
        root = self.roots.get(query_id)
        return root is not None and root.answer is not None

    def root_complete(self, query_id: str) -> None:
        """Quiescence detected: compute the answer, then clean up."""
        node = self.node
        root = self.roots[query_id]
        participation = self.participations[query_id]
        root.answer = node.wrapper.evaluate_query(root.query)
        if root.cache_fill is not None:
            # Fill under the epochs as they stand *after* this query's
            # imports (each ingest bumped them), and register interest
            # upstream so remote writes arrive as invalidations.
            relations = root.query.body_relations()
            node.cache.put(root.cache_fill, relations, root.answer)
            node.register_cache_interest(relations)
        self._cleanup(participation, forwarded_from=None)
        node.termination.forget(query_id)
        node.notify_request_complete("query", query_id)

    # ------------------------------------------------------------------
    # Request propagation
    # ------------------------------------------------------------------

    def _forward_requests(
        self,
        participation: QueryParticipation,
        needed_relations: set[str],
        label: list[str],
    ) -> None:
        """Request every relevant, not-yet-requested outgoing link."""
        node = self.node
        by_remote: dict[str, list[str]] = {}
        for rule_id, link in node.links.outgoing.items():
            if rule_id in participation.received:
                continue
            if not needed_relations & set(link.rule.mapping.head_relations()):
                continue
            participation.received[rule_id] = set()
            by_remote.setdefault(link.remote, []).append(rule_id)
        for remote, rule_ids in by_remote.items():
            pipe = node.pipes.pipe_to(remote)
            try:
                pipe.send(
                    "query_request",
                    {
                        "query_id": participation.query_id,
                        "origin": participation.origin,
                        "label": label,
                        "rule_ids": rule_ids,
                        "persist": participation.persist,
                    },
                )
            except UnknownPeerError:
                continue  # the acquaintance left; query what remains
            node.termination.note_sent(participation.query_id, remote)
            if remote not in participation.forwarded_to:
                participation.forwarded_to.append(remote)

    def on_query_request(self, message: Message) -> None:
        node = self.node
        query_id = message.payload["query_id"]
        if query_id not in self.participations and not node.admission.try_enter(
            query_id, "query"
        ):
            # Admission cap reached: defer the session-creating request
            # un-acked; the sender's deficit keeps the query alive
            # until this node's participation is admitted and replayed.
            node.admission.defer_message(
                query_id, "query", message, self.on_query_request
            )
            return
        tree = node.termination.on_engaging_message(query_id, message.sender)
        participation = self.participations.get(query_id)
        if participation is None:
            participation = QueryParticipation(
                query_id=query_id,
                origin=message.payload["origin"],
                persist=bool(message.payload.get("persist", True)),
            )
            self.participations[query_id] = participation
        label = [str(item) for item in message.payload.get("label", ())]
        activated_bodies: set[str] = set()
        for rule_id in message.payload["rule_ids"]:
            link = node.links.incoming.get(rule_id)
            if link is None or link.remote != message.sender:
                raise ProtocolError(
                    f"{node.name}: query_request for rule {rule_id!r} that "
                    f"does not serve {message.sender!r}"
                )
            if rule_id in participation.sent:
                continue  # already activated for this query
            sent: set = set()
            participation.sent[rule_id] = sent
            frontier = link.rule.frontier()
            bindings = node.wrapper.evaluate_mapping_bindings(
                link.rule.mapping, rule_key=rule_id
            )
            rows = [tuple(b[name] for name in frontier) for b in bindings]
            fresh = [row for row in rows if row_key(row) not in sent]
            sent.update(row_key(row) for row in fresh)
            self._send_data(participation, rule_id, link.remote, fresh, path_len=1)
            activated_bodies |= set(link.rule.mapping.body_relations())
        # The label cut: "a node does not propagate a query request, if
        # its ID is contained in the label".
        if activated_bodies and node.name not in label:
            self._forward_requests(
                participation, activated_bodies, label=label + [node.name]
            )
        node.stats.queries_answered += 1
        node.termination.after_processing(query_id, message.sender, tree)

    def _send_data(
        self,
        participation: QueryParticipation,
        rule_id: str,
        remote: str,
        rows: list[Row],
        *,
        path_len: int,
        always: bool = True,
    ) -> None:
        if not rows and not always:
            return
        node = self.node
        pipe = node.pipes.pipe_to(remote)
        try:
            pipe.send(
                "query_data",
                {
                    "query_id": participation.query_id,
                    "rule_id": rule_id,
                    "rows": [encode_row(row) for row in rows],
                    "path_len": path_len,
                },
            )
        except UnknownPeerError:
            return  # requester left; its cleanup flood will never come
        node.termination.note_sent(participation.query_id, remote)

    # ------------------------------------------------------------------
    # Data ingestion
    # ------------------------------------------------------------------

    def on_query_data(self, message: Message) -> None:
        node = self.node
        query_id = message.payload["query_id"]
        if query_id not in self.participations and node.admission.is_deferred(
            query_id
        ):
            node.admission.defer_message(
                query_id, "query", message, self.on_query_data
            )
            return
        tree = node.termination.on_engaging_message(query_id, message.sender)
        participation = self.participations.get(query_id)
        if participation is None:
            raise ProtocolError(
                f"{node.name}: query_data for unknown query {query_id!r}"
            )
        rule_id = message.payload["rule_id"]
        link = node.links.outgoing.get(rule_id)
        if link is None:
            raise ProtocolError(
                f"{node.name}: query_data for unknown outgoing rule {rule_id!r}"
            )
        received = participation.received.setdefault(rule_id, set())
        rows = [decode_row(encoded) for encoded in message.payload["rows"]]
        fresh_frontier = [row for row in rows if row_key(row) not in received]
        received.update(row_key(row) for row in fresh_frontier)
        path_len = int(message.payload.get("path_len", 1))

        frontier_names = link.rule.frontier()
        bindings = [dict(zip(frontier_names, row)) for row in fresh_frontier]
        facts = apply_head(link.rule.mapping, bindings, node.nulls)
        # Re-fire on everything *this query* newly received — not just
        # rows new to the store.  Concurrent computations share the
        # store, so a row another query imported a moment ago is old to
        # the store but new to this query's data flow; the per-query
        # sent-sets downstream keep this loop bounded.
        deltas: dict[str, list[Row]] = {}
        stored: set[str] = set()
        for relation, row in facts:
            deltas.setdefault(relation, []).append(row)
            new_rows = node.wrapper.insert_new(relation, [row])
            if new_rows:
                stored.add(relation)
            participation.inserted.extend(
                (relation, new_row) for new_row in new_rows
            )
        if stored:
            node.bump_epochs(stored)
        root = self.roots.get(query_id)
        if root is not None:
            root.messages_used += 1

        if deltas:
            changed = set(deltas)
            for rule_id2, sent in participation.sent.items():
                serving = node.links.incoming.get(rule_id2)
                if serving is None:
                    continue
                body = set(serving.rule.mapping.body_relations())
                if not changed & body:
                    continue
                produced: dict[Row, None] = {}
                frontier = serving.rule.frontier()
                for relation in sorted(changed & body):
                    for binding in node.wrapper.evaluate_mapping_bindings(
                        serving.rule.mapping,
                        changed_relation=relation,
                        delta_rows=deltas[relation],
                        rule_key=rule_id2,
                    ):
                        produced[tuple(binding[n] for n in frontier)] = None
                fresh = [row for row in produced if row_key(row) not in sent]
                sent.update(row_key(row) for row in fresh)
                self._send_data(
                    participation,
                    rule_id2,
                    serving.remote,
                    fresh,
                    path_len=path_len + 1,
                    always=False,
                )
        node.termination.after_processing(query_id, message.sender, tree)

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------

    def on_query_complete(self, message: Message) -> None:
        query_id = message.payload["query_id"]
        participation = self.participations.get(query_id)
        if participation is None:
            # Still queued behind admission while the query finished
            # elsewhere (only reachable around failures — a live
            # deferred request blocks quiescence): drop the entry and
            # drain the deferred senders' deficits.
            for stray in self.node.admission.drop(query_id):
                self.node.send_ack(stray.sender, query_id)
            return
        if participation.done:
            return
        self._cleanup(participation, forwarded_from=message.sender)

    def on_peer_down(self, dead_peer: str) -> None:
        """Failure detector: close out participations rooted at a peer
        that left — their cleanup flood will never come, and under
        admission caps an orphaned participation would pin a session
        slot forever."""
        for participation in list(self.participations.values()):
            if participation.origin == dead_peer and not participation.done:
                self._cleanup(participation, forwarded_from=None)

    def _cleanup(
        self, participation: QueryParticipation, forwarded_from: str | None
    ) -> None:
        node = self.node
        participation.done = True
        if not participation.persist and participation.inserted:
            by_relation: dict[str, list[Row]] = {}
            for relation, row in participation.inserted:
                by_relation.setdefault(relation, []).append(row)
            for relation, rows in by_relation.items():
                node.wrapper.delete_rows(relation, rows)
            participation.inserted.clear()
            node.bump_epochs(by_relation)
        for remote in participation.forwarded_to:
            if remote != forwarded_from:
                pipe = node.pipes.pipe_to(remote)
                try:
                    pipe.send(
                        "query_complete", {"query_id": participation.query_id}
                    )
                except UnknownPeerError:
                    continue
        # The participation is over: free its admission slot.
        node.admission.release(participation.query_id)
