"""Epoch-keyed answer cache: the read-side twin of resend suppression.

CUP-style (Roussopoulos & Baker, PAPERS.md) answer caching for a
read-heavy network: every node keeps a size-bounded LRU of query
answers keyed on the query's structure, each entry stamped with the
**epoch vector** of the relations the query's body reads.  An epoch is
a per-relation version counter the node bumps on every mutation —
local insert, ``load_facts``, delta ingest during a global update,
push-delta ingest, query-time data import, the query answerer's
non-persistent rollback, and rule changes (which bump *every*
relation, since the derivable content of all of them may shift).

A lookup serves its entry only while every stamped epoch still equals
the relation's current counter, so a cached answer can never outlive a
write it depends on — and because the key is per-relation, writes to
*unrelated* relations never evict anything (precision comes from the
coordination-rule dependency info the link table already computes; see
:meth:`repro.core.links.LinkTable.incoming_dependent_on_relations`).
Staleness introduced by a *remote* write arrives as either taught rows
(whose ingest bumps epochs here) or a compact ``invalidation`` message
(see :mod:`repro.core.node`); either way the bump invalidates exactly
the dependent entries.

The cache itself is deliberately dumb: it knows nothing about links,
messages or fault fallbacks.  The node layer owns those (registration,
fan-out, ``peer_down``/heal flood resets calling :meth:`bump_all`).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Sequence

from repro.relational.values import Row

#: Default bound on cached entries per node (LRU eviction beyond it).
DEFAULT_CACHE_SIZE = 512


class AnswerCache:
    """Per-node answer cache with per-relation epoch validation.

    Parameters
    ----------
    limit:
        Maximum number of cached entries; least-recently-used entries
        are evicted beyond it.
    enabled:
        When ``False`` the epochs are still maintained (they cost one
        dict increment per mutation) but :meth:`get`/:meth:`put` are
        no-ops — the ablation switch behind
        ``NodeConfig(answer_cache=False)``.
    """

    def __init__(
        self, limit: int = DEFAULT_CACHE_SIZE, *, enabled: bool = True
    ) -> None:
        self.limit = max(1, int(limit))
        self.enabled = enabled
        #: relation name -> version counter (monotonic; absent = 0).
        self.epochs: dict[str, int] = {}
        #: fingerprint -> (epoch vector at fill time, answer rows).
        self._entries: OrderedDict[
            str, tuple[tuple[tuple[str, int], ...], list[Row]]
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Entries dropped because an epoch moved under them (counted
        #: at lookup time and on explicit :meth:`invalidate` sweeps).
        self.invalidations = 0
        self.evictions = 0
        self.stores = 0

    # -- epochs ----------------------------------------------------------

    def epoch(self, relation: str) -> int:
        return self.epochs.get(relation, 0)

    def bump(self, relations: Iterable[str]) -> list[str]:
        """Advance the epoch of every relation in *relations*.

        Returns the relations actually bumped (deduplicated) so the
        node layer can fan invalidations out precisely.
        """
        bumped: list[str] = []
        for relation in relations:
            if relation in bumped:
                continue
            self.epochs[relation] = self.epochs.get(relation, 0) + 1
            bumped.append(relation)
        return bumped

    def bump_all(self) -> None:
        """Conservative flood fallback: advance *every* known epoch and
        drop every entry (``peer_down``, partition heal, rule change —
        moments when precise dependency tracking cannot be trusted)."""
        for relation in self.epochs:
            self.epochs[relation] += 1
        if self._entries:
            self.invalidations += len(self._entries)
            self._entries.clear()

    def vector(self, relations: Iterable[str]) -> tuple[tuple[str, int], ...]:
        """The current epoch vector over *relations* (sorted, deduped)."""
        return tuple(
            (name, self.epochs.get(name, 0)) for name in sorted(set(relations))
        )

    # -- entries ---------------------------------------------------------

    def get(self, fingerprint: str) -> list[Row] | None:
        """The cached answer for *fingerprint*, or ``None``.

        A present entry whose epoch vector no longer matches is removed
        (counted as an invalidation *and* a miss: the caller pays the
        recompute either way).
        """
        if not self.enabled:
            return None
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        stamped, rows = entry
        if any(self.epochs.get(name, 0) != epoch for name, epoch in stamped):
            del self._entries[fingerprint]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return rows

    def put(
        self,
        fingerprint: str,
        relations: Iterable[str],
        rows: Sequence[Row],
    ) -> None:
        """Fill *fingerprint* with *rows*, stamped with the current
        epochs of *relations* (the query body's relations)."""
        if not self.enabled:
            return
        self._entries[fingerprint] = (self.vector(relations), list(rows))
        self._entries.move_to_end(fingerprint)
        self.stores += 1
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, relations: Iterable[str]) -> int:
        """Bump *relations* and eagerly sweep the entries they stamp.

        Lazy validation in :meth:`get` would catch these anyway; the
        eager sweep keeps ``len()`` honest and frees the rows.  Returns
        how many entries were dropped.
        """
        bumped = set(self.bump(relations))
        stale = [
            fingerprint
            for fingerprint, (stamped, _rows) in self._entries.items()
            if any(name in bumped for name, _epoch in stamped)
        ]
        for fingerprint in stale:
            del self._entries[fingerprint]
        self.invalidations += len(stale)
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def counters(self) -> dict[str, int]:
        """The §4-style lifetime counters ``lifetime_totals()`` merges."""
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_invalidations": self.invalidations,
            "cache_evictions": self.evictions,
            "cache_entries": len(self._entries),
        }
