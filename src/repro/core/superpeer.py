"""The super-peer of the demo (§4).

"We provide some peer (called super-peer) with some additional
functionalities.  In particular, that peer can read coordination rules
for all peers from a file and broadcast this file to all peers on the
network. ... Thus, a super-peer can dynamically change the network
topology at runtime. ... A super-peer has the possibility to collect,
at any given time, statistical information from all nodes on the
network.  Then, the super-peer processes all incoming statistical
messages, aggregates them and creates a final statistical report."

The super-peer is an ordinary peer on the transport — it has no
database and no coordination rules of its own.
"""

from __future__ import annotations

from repro.core.rulefile import RuleFile
from repro.core.statistics import (
    NetworkUpdateReport,
    UpdateReport,
    aggregate_reports,
)
from repro.errors import StatisticsError
from repro.p2p.endpoint import Endpoint
from repro.p2p.ids import IdAuthority
from repro.p2p.messages import Message
from repro.p2p.transport import Transport


class SuperPeer:
    """Rule broadcasting + statistics collection (§4)."""

    def __init__(
        self, name: str, transport: Transport, ids: IdAuthority
    ) -> None:
        self.name = name
        self.endpoint = Endpoint(name, transport, ids)
        #: collection_id -> node -> list of reports.
        self._collections: dict[str, dict[str, list[UpdateReport]]] = {}
        self._queries_answered: dict[str, dict[str, int]] = {}
        #: collection_id -> node -> answer-cache counters (hits,
        #: misses, invalidations, suppressed pushes — the CUP-style
        #: read-side statistics the nodes report alongside §4's).
        self._cache_counters: dict[str, dict[str, dict[str, int]]] = {}
        self.rules_broadcasts = 0
        self.endpoint.on("stats_response", self._on_stats_response)

    # ------------------------------------------------------------------
    # Rule-file broadcasting (dynamic topology control)
    # ------------------------------------------------------------------

    def broadcast_rules(self, rule_file: RuleFile | str) -> int:
        """Broadcast *rule_file* to every peer; returns the fan-out.

        Each receiving node keeps only its relevant rules and re-wires
        its pipes, so successive broadcasts change the live topology.
        """
        if isinstance(rule_file, str):
            rule_file = RuleFile.from_text(rule_file)
        self.rules_broadcasts += 1
        return self.endpoint.transport.broadcast(
            self.name, "rules_file", rule_file.to_payload()
        )

    # ------------------------------------------------------------------
    # Statistics collection
    # ------------------------------------------------------------------

    def request_statistics(self) -> str:
        """Ask every node for its accumulated reports; returns the
        collection id.  Drive the transport, then call
        :meth:`aggregate` / :meth:`collected_reports`."""
        collection_id = self.endpoint.ids.message_id()
        self._collections[collection_id] = {}
        self._queries_answered[collection_id] = {}
        self._cache_counters[collection_id] = {}
        self.endpoint.transport.broadcast(
            self.name, "stats_request", {"collection_id": collection_id}
        )
        return collection_id

    def _on_stats_response(self, message: Message) -> None:
        collection_id = message.payload.get("collection_id", "")
        collection = self._collections.get(collection_id)
        if collection is None:
            return
        node = message.payload["node"]
        collection[node] = [
            UpdateReport.from_payload(payload)
            for payload in message.payload.get("reports", ())
        ]
        self._queries_answered[collection_id][node] = int(
            message.payload.get("queries_answered", 0)
        )
        cache = message.payload.get("cache")
        if isinstance(cache, dict):
            self._cache_counters[collection_id][node] = {
                key: int(value) for key, value in cache.items()
            }

    def collected_reports(self, collection_id: str) -> dict[str, list[UpdateReport]]:
        try:
            return self._collections[collection_id]
        except KeyError:
            raise StatisticsError(
                f"unknown statistics collection {collection_id!r}"
            ) from None

    def responding_nodes(self, collection_id: str) -> list[str]:
        return sorted(self.collected_reports(collection_id))

    def cache_counters(self, collection_id: str) -> dict[str, dict[str, int]]:
        """Per-node answer-cache counters from one collection round."""
        try:
            return self._cache_counters[collection_id]
        except KeyError:
            raise StatisticsError(
                f"unknown statistics collection {collection_id!r}"
            ) from None

    def network_cache_totals(self, collection_id: str) -> dict[str, int]:
        """Network-wide sums of the per-node answer-cache counters."""
        totals: dict[str, int] = {}
        for counters in self.cache_counters(collection_id).values():
            for key, value in counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def aggregate(
        self, collection_id: str, update_id: str
    ) -> NetworkUpdateReport:
        """The "final statistical report" for one update (§4)."""
        reports = []
        origin = ""
        for node_reports in self.collected_reports(collection_id).values():
            for report in node_reports:
                if report.update_id == update_id:
                    reports.append(report)
                    origin = report.origin or origin
        if not reports:
            raise StatisticsError(
                f"no node reported anything for update {update_id!r}"
            )
        return aggregate_reports(update_id, origin, reports)

    def final_report(self, collection_id: str, update_id: str) -> str:
        return self.aggregate(collection_id, update_id).format()
