"""The statistical module of §4.

"Each node has an additional statistical module.  This module
accumulates various information about global updates such as: total
execution time of an update, number of query result messages received
per coordination rule and the volume of the data in each message,
longest update propagation path, and so on.  During the lifetime of a
network, each node accumulates this information."

"Each node maintains a global update processing report ... The report
includes information about starting and finishing times of an update,
volume of data transferred, which acquaintances have been queried and
to which nodes query results have been sent."

Both paragraphs map one-to-one onto :class:`UpdateReport`.  The
super-peer "processes all incoming statistical messages, aggregates
them and creates a final statistical report" —
:class:`NetworkUpdateReport` and :func:`aggregate_reports`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro._util import format_table

#: Metric naming/export hooks: ``NodeStatistics.lifetime_totals()``
#: key -> ``(prometheus_name, type, help)``.  The service layer's
#: ``/metrics`` endpoint (:mod:`repro.service.metrics`) renders each
#: node's totals through this table, one labelled sample per node;
#: keys absent here fall back to a sanitised ``codb_node_<key>`` gauge,
#: so a new counter added to ``lifetime_totals()`` is exported (and
#: lint-checked) without touching the service layer.
PROMETHEUS_METRICS: dict[str, tuple[str, str, str]] = {
    # §4 update-processing counters
    "updates": ("codb_node_updates_total", "counter",
                "Global updates this node ever served"),
    "open_updates": ("codb_node_open_updates", "gauge",
                     "Update sessions currently in flight at this node"),
    "messages_sent": ("codb_node_messages_sent_total", "counter",
                      "Protocol messages sent by update sessions"),
    "bytes_sent": ("codb_node_bytes_sent_total", "counter",
                   "Bytes sent by update sessions"),
    "messages_received": ("codb_node_messages_received_total", "counter",
                          "Query-result messages received over outgoing links"),
    "bytes_received": ("codb_node_bytes_received_total", "counter",
                       "Bytes received over outgoing links"),
    "rows_imported": ("codb_node_rows_imported_total", "counter",
                      "Rows materialised from acquaintances"),
    "nulls_minted": ("codb_node_nulls_minted_total", "counter",
                     "Marked nulls minted for existential head variables"),
    "rounds": ("codb_node_rounds_total", "counter",
               "Query-result messages processed"),
    "rows_suppressed": ("codb_node_rows_suppressed_total", "counter",
                        "Rows skipped by teach-forward resend suppression"),
    "busy_time": ("codb_node_busy_seconds_total", "counter",
                  "Summed per-update processing time (transport clock)"),
    "queries_answered": ("codb_node_queries_answered_total", "counter",
                         "Queries answered (local and network)"),
    "peak_concurrent_updates": (
        "codb_node_peak_concurrent_updates", "gauge",
        "Most update sessions ever simultaneously open"),
    # fault counters
    "partial_updates": ("codb_node_partial_updates_total", "counter",
                        "Updates that finished partial (lost peers/links)"),
    # admission counters (NodeConfig.max_active_sessions)
    "sessions_deferred": ("codb_node_sessions_deferred_total", "counter",
                          "Requests that waited in the admission queue"),
    "admission_queue_peak": ("codb_node_admission_queue_peak", "gauge",
                             "Deepest the admission queue ever got"),
    "live_sessions_peak": ("codb_node_live_sessions_peak", "gauge",
                           "Most live engines ever hosted at once"),
    # executor dispatch counters (Wrapper.dispatch_counts)
    "plans_pushdown": ("codb_node_plans_pushdown_total", "counter",
                       "Compiled plans executed as SQL pushdown"),
    "plans_columnar": ("codb_node_plans_columnar_total", "counter",
                       "Compiled plans executed columnar in memory"),
    "plans_row_loop": ("codb_node_plans_row_loop_total", "counter",
                       "Compiled plans executed as row loops"),
    # answer-cache / interest-protocol counters (CoDBNode.cache_counters)
    "cache_hits": ("codb_node_cache_hits_total", "counter",
                   "Answer-cache hits"),
    "cache_misses": ("codb_node_cache_misses_total", "counter",
                     "Answer-cache misses"),
    "cache_invalidations": ("codb_node_cache_invalidations_total", "counter",
                            "Answer-cache entries dropped by epoch bumps"),
    "cache_evictions": ("codb_node_cache_evictions_total", "counter",
                        "Answer-cache LRU evictions"),
    "cache_entries": ("codb_node_cache_entries", "gauge",
                      "Answer-cache entries currently held"),
    "invalidations_sent": ("codb_node_invalidations_sent_total", "counter",
                           "Compact invalidation notices sent downstream"),
    "invalidations_received": (
        "codb_node_invalidations_received_total", "counter",
        "Compact invalidation notices received"),
    "pushes_suppressed": ("codb_node_pushes_suppressed_total", "counter",
                          "Continuous-mode pushes withheld for interest"),
    "invalidation_batches": (
        "codb_node_invalidation_batches_total", "counter",
        "Invalidation messages sent (each carrying >=1 notice)"),
    "invalidations_coalesced": (
        "codb_node_invalidations_coalesced_total", "counter",
        "Notices that shared a batched invalidation message"),
    "interest_leases_expired": (
        "codb_node_interest_leases_expired_total", "counter",
        "Interest registrations expired by their suppression lease"),
}


@dataclass
class RuleTraffic:
    """Per-coordination-rule message statistics at one node."""

    messages_received: int = 0
    bytes_received: int = 0
    #: Volume of each individual result message, in arrival order.
    message_volumes: list[int] = field(default_factory=list)
    rows_received: int = 0
    rows_new: int = 0

    def record(self, volume: int, rows: int, new_rows: int) -> None:
        self.messages_received += 1
        self.bytes_received += volume
        self.message_volumes.append(volume)
        self.rows_received += rows
        self.rows_new += new_rows

    def to_payload(self) -> dict[str, Any]:
        return {
            "messages_received": self.messages_received,
            "bytes_received": self.bytes_received,
            "message_volumes": list(self.message_volumes),
            "rows_received": self.rows_received,
            "rows_new": self.rows_new,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "RuleTraffic":
        traffic = cls(
            messages_received=payload["messages_received"],
            bytes_received=payload["bytes_received"],
            rows_received=payload["rows_received"],
            rows_new=payload["rows_new"],
        )
        traffic.message_volumes = list(payload["message_volumes"])
        return traffic


@dataclass
class UpdateReport:
    """One node's report for one global update (§4, quoted above)."""

    update_id: str
    node: str
    origin: str
    started_at: float = 0.0
    finished_at: float = 0.0
    status: str = "open"  # open | closed
    #: rule_id -> traffic received over that outgoing link.
    per_rule: dict[str, RuleTraffic] = field(default_factory=dict)
    #: Acquaintances this node sent update requests to.
    queried_acquaintances: list[str] = field(default_factory=list)
    #: Importers this node sent query results to.
    results_sent_to: list[str] = field(default_factory=list)
    messages_sent: int = 0
    bytes_sent: int = 0
    rows_imported: int = 0
    nulls_minted: int = 0
    longest_path: int = 0
    links_closed_by_cascade: int = 0
    links_closed_by_quiescence: int = 0
    links_closed_by_failure: int = 0
    rounds: int = 0  # query-result messages processed
    #: The node served empty results because its local database was
    #: inconsistent (§1d — "local inconsistency does not propagate").
    quarantined: bool = False
    #: Peers this node could not reach during the update (crashed or
    #: severed by a partition), in discovery order.  Non-empty ⇒ the
    #: update is ``partial`` from this node's point of view.
    unreachable_peers: list[str] = field(default_factory=list)
    #: Rows a previous update's lifetime ``pushed`` memory let this
    #: node skip re-shipping (teach-forward resend suppression).
    rows_suppressed: int = 0

    @property
    def duration(self) -> float:
        """Total execution time of the update, at this node."""
        return max(0.0, self.finished_at - self.started_at)

    @property
    def outcome(self) -> str:
        """``"complete"`` when every reachable flow ran to quiescence,
        ``"partial"`` when a peer was lost or a link closed by failure
        — the severed side's data never arrived (the protocol still
        *terminated*; §1's churn claim is about termination, not
        completeness)."""
        if self.unreachable_peers or self.links_closed_by_failure:
            return "partial"
        return "complete"

    def note_unreachable(self, peer: str) -> None:
        if peer not in self.unreachable_peers:
            self.unreachable_peers.append(peer)

    def rule_traffic(self, rule_id: str) -> RuleTraffic:
        return self.per_rule.setdefault(rule_id, RuleTraffic())

    def total_bytes_received(self) -> int:
        return sum(t.bytes_received for t in self.per_rule.values())

    def total_messages_received(self) -> int:
        return sum(t.messages_received for t in self.per_rule.values())

    def to_payload(self) -> dict[str, Any]:
        return {
            "update_id": self.update_id,
            "node": self.node,
            "origin": self.origin,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "status": self.status,
            "per_rule": {k: v.to_payload() for k, v in self.per_rule.items()},
            "queried_acquaintances": list(self.queried_acquaintances),
            "results_sent_to": list(self.results_sent_to),
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "rows_imported": self.rows_imported,
            "nulls_minted": self.nulls_minted,
            "longest_path": self.longest_path,
            "links_closed_by_cascade": self.links_closed_by_cascade,
            "links_closed_by_quiescence": self.links_closed_by_quiescence,
            "links_closed_by_failure": self.links_closed_by_failure,
            "rounds": self.rounds,
            "quarantined": self.quarantined,
            "unreachable_peers": list(self.unreachable_peers),
            "rows_suppressed": self.rows_suppressed,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "UpdateReport":
        report = cls(
            update_id=payload["update_id"],
            node=payload["node"],
            origin=payload["origin"],
            started_at=payload["started_at"],
            finished_at=payload["finished_at"],
            status=payload["status"],
            queried_acquaintances=list(payload["queried_acquaintances"]),
            results_sent_to=list(payload["results_sent_to"]),
            messages_sent=payload["messages_sent"],
            bytes_sent=payload["bytes_sent"],
            rows_imported=payload["rows_imported"],
            nulls_minted=payload["nulls_minted"],
            longest_path=payload["longest_path"],
            links_closed_by_cascade=payload["links_closed_by_cascade"],
            links_closed_by_quiescence=payload["links_closed_by_quiescence"],
            links_closed_by_failure=payload.get("links_closed_by_failure", 0),
            rounds=payload["rounds"],
            quarantined=payload.get("quarantined", False),
            unreachable_peers=list(payload.get("unreachable_peers", [])),
            rows_suppressed=payload.get("rows_suppressed", 0),
        )
        report.per_rule = {
            k: RuleTraffic.from_payload(v) for k, v in payload["per_rule"].items()
        }
        return report


class NodeStatistics:
    """Lifetime accumulator: every report this node ever produced.

    With concurrent global updates a node holds several *open* reports
    at once — one per active session — so alongside the per-update
    reports this class exposes aggregate (lifetime) numbers.
    """

    def __init__(self, node: str) -> None:
        self.node = node
        self.reports: dict[str, UpdateReport] = {}
        self.queries_answered = 0
        self.network_queries_started = 0
        # Admission-layer metrics (``NodeConfig.max_active_sessions``):
        # how often work waited in the admission queue, how deep the
        # queue got, and the most live engines (update sessions plus
        # query participations) this node ever hosted at once.
        self.sessions_deferred = 0
        self.admission_queue_peak = 0
        self.live_sessions_peak = 0
        #: Zero-argument callable returning the store's executor
        #: dispatch counters (``Wrapper.dispatch_counts``); the node
        #: wires it at construction so ``lifetime_totals`` can show
        #: where compiled plans actually ran.
        self.dispatch_source = None
        #: Zero-argument callable returning the node's answer-cache and
        #: interest-protocol counters (``CoDBNode.cache_counters``),
        #: wired the same way as :attr:`dispatch_source`.
        self.cache_source = None
        #: Per-tenant submission counts: tenant -> kind -> count.
        #: Tagged by the service gateway (``submit_*(tenant=...)``);
        #: untagged driver-script submissions are not recorded.
        self.tenant_submissions: dict[str, dict[str, int]] = {}

    def note_tenant_submission(self, tenant: str, kind: str) -> None:
        """Record one tenant-tagged submission (no-op when untagged)."""
        if not tenant:
            return
        by_kind = self.tenant_submissions.setdefault(tenant, {})
        by_kind[kind] = by_kind.get(kind, 0) + 1

    def tenant_totals(self) -> dict[str, dict[str, int]]:
        """Per-tenant submission counts (deep copy, scrape-safe)."""
        return {
            tenant: dict(by_kind)
            for tenant, by_kind in self.tenant_submissions.items()
        }

    def open_report(self, update_id: str, origin: str, now: float) -> UpdateReport:
        report = UpdateReport(
            update_id=update_id, node=self.node, origin=origin, started_at=now
        )
        self.reports[update_id] = report
        return report

    def report_for(self, update_id: str) -> UpdateReport | None:
        return self.reports.get(update_id)

    def latest_report(self) -> UpdateReport | None:
        if not self.reports:
            return None
        return next(reversed(self.reports.values()))

    def total_updates(self) -> int:
        return len(self.reports)

    def open_reports(self) -> list[UpdateReport]:
        """Reports of updates still in flight at this node."""
        return [r for r in self.reports.values() if r.status != "closed"]

    def lifetime_totals(self) -> dict[str, Any]:
        """Aggregate numbers across every update this node ever served.

        Includes the store's executor dispatch counters (one stat per
        dispatch case: ``plans_pushdown`` / ``plans_columnar`` /
        ``plans_row_loop``) when a :attr:`dispatch_source` is wired.
        """
        reports = list(self.reports.values())
        totals = {
            "updates": len(reports),
            "open_updates": sum(1 for r in reports if r.status != "closed"),
            "messages_sent": sum(r.messages_sent for r in reports),
            "bytes_sent": sum(r.bytes_sent for r in reports),
            "messages_received": sum(
                r.total_messages_received() for r in reports
            ),
            "bytes_received": sum(r.total_bytes_received() for r in reports),
            "rows_imported": sum(r.rows_imported for r in reports),
            "nulls_minted": sum(r.nulls_minted for r in reports),
            "rounds": sum(r.rounds for r in reports),
            "rows_suppressed": sum(r.rows_suppressed for r in reports),
            "partial_updates": sum(
                1 for r in reports if r.outcome == "partial"
            ),
            "unreachable_peers": sorted(
                {p for r in reports for p in r.unreachable_peers}
            ),
            "busy_time": sum(r.duration for r in reports),
            "peak_concurrent_updates": peak_concurrency(reports),
            "queries_answered": self.queries_answered,
            "sessions_deferred": self.sessions_deferred,
            "admission_queue_peak": self.admission_queue_peak,
            "live_sessions_peak": self.live_sessions_peak,
        }
        if self.dispatch_source is not None:
            totals.update(self.dispatch_source())
        if self.cache_source is not None:
            totals.update(self.cache_source())
        return totals


@dataclass
class NetworkUpdateReport:
    """The super-peer's "final statistical report" for one update."""

    update_id: str
    origin: str
    node_reports: dict[str, UpdateReport]
    #: The peers the *driver's* reachability check found severed from
    #: the origin (exactly the cut component), when it ran one; falls
    #: back to the union of per-node local views otherwise.
    unreachable_peers: list[str] = field(default_factory=list)

    @property
    def outcome(self) -> str:
        """Network-level verdict: ``"partial"`` when any peer was
        unreachable or any node saw a failure-closed link."""
        if self.unreachable_peers:
            return "partial"
        if any(
            r.outcome == "partial" for r in self.node_reports.values()
        ):
            return "partial"
        return "complete"

    @property
    def wall_time(self) -> float:
        """Total execution time: first start to last finish, network-wide."""
        starts = [r.started_at for r in self.node_reports.values()]
        ends = [r.finished_at for r in self.node_reports.values()]
        if not starts:
            return 0.0
        return max(ends) - min(starts)

    @property
    def total_messages(self) -> int:
        return sum(
            r.total_messages_received() for r in self.node_reports.values()
        )

    @property
    def total_bytes(self) -> int:
        return sum(r.total_bytes_received() for r in self.node_reports.values())

    @property
    def total_rows_imported(self) -> int:
        return sum(r.rows_imported for r in self.node_reports.values())

    @property
    def total_nulls_minted(self) -> int:
        return sum(r.nulls_minted for r in self.node_reports.values())

    @property
    def longest_path(self) -> int:
        """Longest update propagation path anywhere in the network."""
        return max(
            (r.longest_path for r in self.node_reports.values()), default=0
        )

    def messages_per_rule(self) -> dict[str, int]:
        """Aggregated "query result messages received per coordination
        rule" (§4)."""
        totals: dict[str, int] = {}
        for report in self.node_reports.values():
            for rule_id, traffic in report.per_rule.items():
                totals[rule_id] = totals.get(rule_id, 0) + traffic.messages_received
        return dict(sorted(totals.items()))

    def volume_per_rule(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for report in self.node_reports.values():
            for rule_id, traffic in report.per_rule.items():
                totals[rule_id] = totals.get(rule_id, 0) + traffic.bytes_received
        return dict(sorted(totals.items()))

    def message_volumes(self) -> list[int]:
        """Every individual result-message volume, network-wide."""
        volumes: list[int] = []
        for report in self.node_reports.values():
            for traffic in report.per_rule.values():
                volumes.extend(traffic.message_volumes)
        return volumes

    def format(self) -> str:
        """Human-readable final report (what the demo's super-peer shows)."""
        rows = []
        for name in sorted(self.node_reports):
            report = self.node_reports[name]
            rows.append(
                [
                    name,
                    f"{report.duration:.6f}",
                    report.total_messages_received(),
                    report.total_bytes_received(),
                    report.rows_imported,
                    report.nulls_minted,
                    report.longest_path,
                ]
            )
        table = format_table(
            ["node", "duration_s", "msgs_recv", "bytes_recv", "rows_new", "nulls", "longest_path"],
            rows,
            title=(
                f"global update {self.update_id} (origin {self.origin}): "
                f"outcome={self.outcome} wall={self.wall_time:.6f}s "
                f"msgs={self.total_messages} "
                f"bytes={self.total_bytes} longest_path={self.longest_path}"
            ),
        )
        if self.unreachable_peers:
            table += f"\nunreachable: {', '.join(sorted(self.unreachable_peers))}"
        return table


def aggregate_reports(
    update_id: str,
    origin: str,
    reports: list[UpdateReport],
    *,
    unreachable_peers: list[str] | None = None,
) -> NetworkUpdateReport:
    """The super-peer aggregation step (§4).

    ``unreachable_peers`` is the driver's reachability verdict (exactly
    the component severed from the origin); when the driver has none,
    the union of per-node local views stands in — correct for crashes
    (only survivors report), possibly naming both sides of a cut for
    partitions whose far-side reports are also collected.
    """
    if unreachable_peers is None:
        unreachable_peers = sorted(
            {peer for report in reports for peer in report.unreachable_peers}
        )
    return NetworkUpdateReport(
        update_id=update_id,
        origin=origin,
        node_reports={report.node: report for report in reports},
        unreachable_peers=list(unreachable_peers),
    )


def peak_concurrency(reports: list[UpdateReport]) -> int:
    """Maximum number of updates simultaneously open, by report spans.

    Sweep-line over ``[started_at, finished_at)`` intervals (an open
    report counts as unbounded).  This is the aggregate the concurrent-
    update benchmarks quote: how much overlap actually happened.
    """
    events: list[tuple[float, int]] = []
    for report in reports:
        events.append((report.started_at, 1))
        if report.status == "closed" and report.finished_at >= report.started_at:
            events.append((report.finished_at, -1))
        # still-open reports get no close event and stay counted
    peak = 0
    current = 0
    # Close events sort before open events at the same instant, so
    # back-to-back sequential updates (finish == next start) count as
    # concurrency 1, not 2.
    for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
        current += delta
        peak = max(peak, current)
    return peak
