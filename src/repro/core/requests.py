"""Request handles: queries and updates as first-class sessions.

The paper's DBM "serves, in general, many requests concurrently" (§3).
This module is the public face of that: every request — a global
update or a network query — is submitted, not run, and the caller gets
back a :class:`RequestHandle` that can be awaited (``result``),
streamed (:func:`as_completed`), partitioned (:func:`wait`), observed
(``add_done_callback``) or withdrawn before admission (``cancel``).
The blocking entry points (``CoDBNetwork.global_update``,
``CoDBNetwork.query``, ``await_all``) survive as thin wrappers over
handles.

Completion is event-driven end to end: update/query engines signal
their node on root completion and session finalization, nodes notify
the per-network progress condition
(:attr:`repro.p2p.transport.Transport.progress`), and every wait in
this module blocks on that condition (TCP) or steps the simulator's
event queue one delivery at a time — there is no ``time.sleep``
polling on any completion path.

Admission control
-----------------

:class:`AdmissionControl` is the per-node admission layer (Youtopia-
style managed update-exchange sessions; CUP-style propagation control
under storms): with
``NodeConfig.max_active_sessions = K`` a node keeps at most K live
engines (update sessions + query participations).  Excess work queues:

* locally submitted requests wait in the node's admission queue as
  *pending initiations* — the handle exists and is cancellable, the
  request simply has not started;
* session-*creating* messages from remote peers (the first
  ``update_request`` / ``query_request`` of an unknown id) are
  deferred un-acked, which keeps the sender's Dijkstra–Scholten
  deficit open — the computation cannot falsely quiesce while a
  participant is still queued.

The queue drains in **global seniority order** (the numeric counter
every id carries), not raw arrival order: all nodes agree on the
order, so under a storm every node works on the same most-senior
updates and the remainder wait their turn — the storm degrades into a
pipeline instead of thrashing.  Admission assumes ids flood a
connected network; under extreme arrival skew a node can hold a
senior request queued behind locally admitted juniors, in which case
the drivers' ``poll_timeout`` turns a (theoretical) stall into an
error rather than a hang.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    ProtocolError,
    RequestCancelledError,
    RequestTimeoutError,
)
from repro.p2p.messages import Message
from repro.p2p.transport import Transport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import CoDBNode

#: ``wait(return_when=...)`` modes, mirroring :mod:`concurrent.futures`.
FIRST_COMPLETED = "FIRST_COMPLETED"
ALL_COMPLETED = "ALL_COMPLETED"

#: Handle lifecycle states.
PENDING = "pending"      # submitted; possibly queued behind admission
DONE = "done"
CANCELLED = "cancelled"

#: Process-wide completion sequence: assigns every handle a strictly
#: increasing index the moment its completion is *observed*, which is
#: what ``as_completed`` sorts by when several handles finish between
#: two wake-ups.  (``itertools.count.__next__`` is atomic in CPython.)
_COMPLETION_SEQUENCE = itertools.count(1)

_UNSET = object()


class RequestHandle:
    """One submitted request: id, kind, origin, and its completion.

    Returned by ``CoDBNetwork.submit_global_update`` /
    ``submit_query`` and by the node-level ``submit_*`` methods.  The
    network-level variants of ``result()`` return an
    :class:`~repro.core.network.UpdateOutcome` (updates) or the answer
    rows (queries); node-level update handles return the node's own
    :class:`~repro.core.statistics.UpdateReport`.

    Attributes
    ----------
    request_id:
        The update/query id (also available as :attr:`update_id` for
        update handles, matching the PR-3 ``UpdateHandle`` surface).
    kind:
        ``"update"`` or ``"query"``.
    origin:
        The submitting node's name.
    started_at / messages_before / bytes_before:
        Transport clock and traffic counters at submission; the
        matching outcome windows are measured from here.
    finished_at / messages_after / bytes_after:
        The same, captured the moment completion was observed.
    tenant:
        The submitting tenant (service-gateway multi-tenancy); ``""``
        for untagged driver-script submissions.
    """

    def __init__(
        self,
        *,
        request_id: str,
        kind: str,
        origin: str,
        transport: Transport,
        is_done: Callable[[], bool],
        assemble: Callable[["RequestHandle"], Any],
        try_cancel: Callable[[], bool] | None = None,
        started_at: float = 0.0,
        messages_before: int = 0,
        bytes_before: int = 0,
        tenant: str = "",
    ) -> None:
        self.request_id = request_id
        self.kind = kind
        self.origin = origin
        self.tenant = tenant
        self.started_at = started_at
        self.messages_before = messages_before
        self.bytes_before = bytes_before
        self.finished_at = 0.0
        self.messages_after = 0
        self.bytes_after = 0
        #: Global completion-observation index (see _COMPLETION_SEQUENCE).
        self.completion_index = 0
        self._transport = transport
        self._is_done = is_done
        self._assemble = assemble
        self._try_cancel = try_cancel
        self._state = PENDING
        self._result: Any = _UNSET
        self._callbacks: list[Callable[["RequestHandle"], None]] = []
        self._lock = threading.Lock()

    # -- PR-3 compatibility ------------------------------------------------

    @property
    def update_id(self) -> str:
        """Alias of :attr:`request_id` (the PR-3 ``UpdateHandle`` field)."""
        return self.request_id

    # -- state -------------------------------------------------------------

    def cancelled(self) -> bool:
        return self._state == CANCELLED

    def done(self) -> bool:
        """Whether the request has completed (or was cancelled).

        Checking is also how completion gets *recorded*: the first
        ``done()`` that observes the underlying predicate true stamps
        the completion time, traffic counters and completion index and
        fires the done callbacks.
        """
        if self._state != PENDING:
            return True
        if not self._is_done():
            return False
        self._mark_done()
        return True

    def _mark_done(self) -> None:
        with self._lock:
            if self._state != PENDING:
                return
            self._state = DONE
            self.finished_at = self._transport.now()
            self.messages_after = self._transport.stats.messages_sent
            self.bytes_after = self._transport.stats.bytes_sent
            self.completion_index = next(_COMPLETION_SEQUENCE)
            callbacks = list(self._callbacks)
            self._callbacks.clear()
        for callback in callbacks:
            callback(self)

    # -- completion --------------------------------------------------------

    def result(self, timeout: float | None = None) -> Any:
        """Block until the request completes; return its outcome.

        Drives the network while waiting (steps the simulator; waits on
        the progress condition over TCP).  Raises
        :class:`~repro.errors.RequestTimeoutError` if the request does
        not complete within *timeout* seconds (or, on the simulator,
        if the event queue drains first), and
        :class:`~repro.errors.RequestCancelledError` for a cancelled
        handle.
        """
        if self._state == CANCELLED:
            raise RequestCancelledError(
                f"{self.kind} {self.request_id} was cancelled before admission"
            )
        if not self.done():
            self._transport.wait_for(
                self.done,
                timeout,
                description=f"{self.kind} {self.request_id}",
            )
        if self._state == CANCELLED:
            raise RequestCancelledError(
                f"{self.kind} {self.request_id} was cancelled before admission"
            )
        if self._result is _UNSET:
            self._result = self._assemble(self)
        return self._result

    def cancel(self) -> bool:
        """Withdraw the request if it has not been admitted yet.

        Only a request still waiting in its origin's admission queue
        can be cancelled — once the session is live its propagation is
        distributed and there is nothing local left to retract.
        Returns ``True`` when the request is (now) cancelled.
        """
        with self._lock:
            if self._state == CANCELLED:
                return True
            if self._state == DONE or self._try_cancel is None:
                return False
        # The retraction takes the origin node's lock, which delivery
        # threads hold while completing handles (node lock -> handle
        # lock); invoking it under our own lock would invert that
        # order and deadlock — so withdraw first, then restate.
        if not self._try_cancel():
            with self._lock:
                return self._state == CANCELLED
        with self._lock:
            if self._state != PENDING:
                return self._state == CANCELLED
            self._state = CANCELLED
            self.finished_at = self._transport.now()
            self.completion_index = next(_COMPLETION_SEQUENCE)
            callbacks = list(self._callbacks)
            self._callbacks.clear()
        for callback in callbacks:
            callback(self)
        self._transport.notify_progress()
        return True

    def add_done_callback(
        self, callback: Callable[["RequestHandle"], None]
    ) -> None:
        """Call ``callback(handle)`` when the handle completes (or is
        cancelled); immediately if it already has."""
        with self._lock:
            if self._state == PENDING:
                self._callbacks.append(callback)
                return
        callback(self)

    def asyncio_future(self, loop) -> "Any":
        """Bridge this handle onto an :mod:`asyncio` event loop.

        Returns an ``asyncio.Future`` belonging to *loop* that resolves
        with the handle itself once the request completes or is
        cancelled.  Completion is observed on whatever thread delivers
        it (a transport delivery thread, the process-runner pump, the
        simulator driver) and marshalled onto *loop* with
        ``call_soon_threadsafe`` — the service gateway awaits these
        futures without ever blocking the event loop.  The future never
        carries an exception: callers inspect ``handle.cancelled()`` /
        ``handle.result()`` themselves, off-loop, because assembly may
        block on the network.
        """
        future = loop.create_future()

        def resolve(handle: "RequestHandle") -> None:
            def settle() -> None:
                if not future.done():
                    future.set_result(handle)

            try:
                loop.call_soon_threadsafe(settle)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

        self.add_done_callback(resolve)
        return future

    def __repr__(self) -> str:
        return (
            f"<RequestHandle {self.kind} {self.request_id} "
            f"origin={self.origin} state={self._state}>"
        )


# ---------------------------------------------------------------------------
# Module-level driving: streaming and partitioned waits
# ---------------------------------------------------------------------------


def _shared_transport(handles: list[RequestHandle]) -> Transport:
    transports = {id(handle._transport): handle._transport for handle in handles}
    if len(transports) != 1:
        raise ProtocolError(
            "all handles must belong to the same network/transport"
        )
    return next(iter(transports.values()))


def as_completed(handles, timeout: float | None = None):
    """Yield *handles* in the order they complete.

    Drives the network while waiting, so completion order is the real
    one: deterministic virtual-time order on the simulator, observed
    wall-clock order over TCP.  Cancelled handles are yielded too (at
    their cancellation point).  Raises
    :class:`~repro.errors.RequestTimeoutError` if *timeout* seconds
    elapse with handles still pending — or, on the simulator, if the
    event queue drains while some handle can never complete.
    """
    pending = list(handles)
    if not pending:
        return
    transport = _shared_transport(pending)
    deadline = None if timeout is None else time.monotonic() + timeout
    while pending:
        ready = [handle for handle in pending if handle.done()]
        if not ready:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            transport.wait_for(
                lambda: any(handle.done() for handle in pending),
                remaining,
                description=f"as_completed over {len(pending)} request(s)",
            )
            ready = [handle for handle in pending if handle.done()]
        ready.sort(key=lambda handle: handle.completion_index)
        for handle in ready:
            pending.remove(handle)
            yield handle


def wait(
    handles,
    timeout: float | None = None,
    *,
    return_when: str = ALL_COMPLETED,
) -> tuple[list[RequestHandle], list[RequestHandle]]:
    """Drive the network until the waited-for condition; partition.

    Returns ``(done, not_done)`` lists in input order.  With
    ``return_when=FIRST_COMPLETED`` returns as soon as any handle is
    done.  Unlike :func:`as_completed`, a timeout (or the simulator's
    event queue draining) does not raise — the partition simply
    reflects whatever completed, mirroring
    :func:`concurrent.futures.wait`.
    """
    if return_when not in (FIRST_COMPLETED, ALL_COMPLETED):
        raise ProtocolError(f"unknown return_when {return_when!r}")
    handles = list(handles)
    if not handles:
        return [], []
    transport = _shared_transport(handles)

    def satisfied() -> bool:
        done_count = sum(1 for handle in handles if handle.done())
        if return_when == FIRST_COMPLETED:
            return done_count >= 1
        return done_count == len(handles)

    try:
        transport.wait_for(
            satisfied, timeout, description=f"wait over {len(handles)} request(s)"
        )
    except RequestTimeoutError:
        pass
    done = [handle for handle in handles if handle.done()]
    not_done = [handle for handle in handles if not handle.done()]
    return done, not_done


# ---------------------------------------------------------------------------
# Per-node admission control
# ---------------------------------------------------------------------------


def _seniority(request_id: str) -> tuple:
    """Global seniority of an id: (mint counter, kind prefix, full id).

    Every :class:`~repro.p2p.ids.IdAuthority` id ends in a monotone
    per-kind counter (``update-ab12cd-0007``) and starts with its kind
    prefix, so ALL nodes agree on the relative order of any two ids —
    a network-wide consistent admission order is what keeps capped
    nodes working on the same requests instead of deadlocking on each
    other's queues.  The full id is the final tie-break: process-per-
    node deployments mint ids from one authority per worker, so two
    origins' first updates share counter 0 — the (arbitrary but
    globally consistent) id ordering keeps the total order total.
    """
    prefix = request_id.split("-", 1)[0]
    try:
        return (int(request_id.rsplit("-", 1)[-1]), prefix, request_id)
    except ValueError:  # pragma: no cover - foreign id shapes
        return (1 << 30, prefix, request_id)


class _PendingAdmission:
    """One queued request at a node: either a local initiation waiting
    to start, or deferred session-creating messages from remote peers."""

    __slots__ = ("request_id", "kind", "start", "messages", "arrival")

    def __init__(
        self,
        request_id: str,
        kind: str,
        arrival: int,
        start: Callable[[], None] | None = None,
    ) -> None:
        self.request_id = request_id
        self.kind = kind
        self.start = start
        self.arrival = arrival
        #: Deferred remote messages, in arrival order, each paired with
        #: the manager callback that will process it on admission.
        self.messages: list[tuple[Message, Callable[[Message], None]]] = []


class AdmissionControl:
    """The per-node admission layer (see module docstring).

    ``NodeConfig.max_active_sessions`` bounds ``len(live)``; the queue
    holds everything waiting, drained in global seniority order as
    sessions finish.  Runs entirely under the owning node's lock (all
    call sites are node handlers or locked public methods).
    """

    def __init__(self, node: "CoDBNode") -> None:
        self.node = node
        #: Live sessions: request id -> kind.
        self.live: dict[str, str] = {}
        #: The subset of :attr:`live` this node itself initiated.
        self._local_live: set[str] = set()
        self._pending: dict[str, _PendingAdmission] = {}
        self._arrivals = itertools.count()
        self._draining = False

    @property
    def capacity(self) -> int:
        """The cap; ``0`` means unbounded."""
        return self.node.config.max_active_sessions

    def queue_depth(self) -> int:
        return len(self._pending)

    def is_deferred(self, request_id: str) -> bool:
        return request_id in self._pending

    # -- admission ---------------------------------------------------------

    def _local_slot_free(self) -> bool:
        """Whether another *locally initiated* session may go live.

        Local submissions appear instantly while remote floods take
        network hops, so a node that filled every slot with its own
        juniors could lock a globally senior in-flight update out —
        and with every node doing that, the storm deadlocks.  Local
        initiations therefore hold at most ``cap - 1`` slots (one slot
        always answers to remote seniority); with ``cap == 1`` only an
        otherwise-idle node may start locally, which serves the
        single-origin case — multi-origin storms need ``cap >= 2``.
        """
        capacity = self.capacity
        if capacity == 1:
            return not self.live
        return len(self._local_live) < capacity - 1

    def try_enter(
        self, request_id: str, kind: str, *, initiation: bool = False
    ) -> bool:
        """Admit *request_id* now if the cap allows; track it as live."""
        if request_id in self.live:
            return True
        capacity = self.capacity
        if capacity > 0:
            if len(self.live) >= capacity or self._pending:
                return False
            if initiation and not self._local_slot_free():
                return False
        self._go_live(request_id, kind, initiation=initiation)
        return True

    def _go_live(
        self, request_id: str, kind: str, *, initiation: bool
    ) -> None:
        self.live[request_id] = kind
        if initiation:
            self._local_live.add(request_id)
        stats = self.node.stats
        stats.live_sessions_peak = max(stats.live_sessions_peak, len(self.live))

    def defer_initiation(
        self, request_id: str, kind: str, start: Callable[[], None]
    ) -> None:
        """Queue a locally submitted request; *start* runs on admission."""
        entry = _PendingAdmission(
            request_id, kind, next(self._arrivals), start=start
        )
        self._pending[request_id] = entry
        self._note_deferred()
        self.drain()

    def defer_message(
        self,
        request_id: str,
        kind: str,
        message: Message,
        replay: Callable[[Message], None],
    ) -> None:
        """Queue a session-creating remote message, un-acked.

        The sender's termination deficit stays open until the message
        is replayed after admission, so the computation cannot quiesce
        around a still-queued participant.
        """
        entry = self._pending.get(request_id)
        if entry is None:
            entry = _PendingAdmission(request_id, kind, next(self._arrivals))
            self._pending[request_id] = entry
            self._note_deferred()
        entry.messages.append((message, replay))
        # A slot may be free (the queue can hold entries blocked only
        # by fairness or the local budget): hand it to the most senior
        # admissible entry right away — possibly this very message.
        self.drain()

    def _note_deferred(self) -> None:
        stats = self.node.stats
        stats.sessions_deferred += 1
        stats.admission_queue_peak = max(
            stats.admission_queue_peak, len(self._pending)
        )

    # -- withdrawal --------------------------------------------------------

    def cancel(self, request_id: str) -> bool:
        """Withdraw a queued *local* initiation; ``False`` once live."""
        entry = self._pending.get(request_id)
        if entry is None or entry.start is None:
            return False
        del self._pending[request_id]
        # A removed head may unblock juniors queued behind it purely
        # for seniority-fairness while a slot was actually free.
        self.drain()
        return True

    def drop(self, request_id: str) -> list[Message]:
        """Remove a queued entry outright (the request completed or
        died elsewhere); returns its deferred messages so the caller
        can ack their senders' deficits."""
        entry = self._pending.pop(request_id, None)
        if entry is None:
            return []
        return [message for message, _replay in entry.messages]

    def on_peer_down(self, dead_peer: str) -> None:
        """Forget deferred messages from a departed peer (their
        deficits die with the sender); drop entries left empty."""
        for request_id, entry in list(self._pending.items()):
            entry.messages = [
                (message, replay)
                for message, replay in entry.messages
                if message.sender != dead_peer
            ]
            if not entry.messages and entry.start is None:
                del self._pending[request_id]

    # -- release & drain ---------------------------------------------------

    def release(self, request_id: str) -> None:
        """A session finished here: free its slot, admit the queue."""
        self.live.pop(request_id, None)
        self._local_live.discard(request_id)
        self.drain()

    def drain(self) -> None:
        """Admit queued requests in seniority order while slots last.

        Local initiations blocked by the local-slot budget are skipped
        (a junior remote may overtake them); they go live once a local
        slot frees.
        """
        if self._draining:
            return  # an activation completed synchronously; outer loop runs
        self._draining = True
        try:
            while self._pending:
                capacity = self.capacity
                if capacity > 0 and len(self.live) >= capacity:
                    break
                admissible = [
                    entry
                    for entry in self._pending.values()
                    if entry.start is None or self._local_slot_free()
                ]
                if not admissible:
                    break
                entry = min(
                    admissible,
                    key=lambda e: (_seniority(e.request_id), e.arrival),
                )
                del self._pending[entry.request_id]
                self._go_live(
                    entry.request_id,
                    entry.kind,
                    initiation=entry.start is not None,
                )
                if entry.start is not None:
                    entry.start()
                for message, replay in entry.messages:
                    replay(message)
        finally:
            self._draining = False
