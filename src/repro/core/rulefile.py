"""Rule files: the unit the super-peer broadcasts.

§4: the super-peer "can read coordination rules for all peers from a
file and broadcast this file to all peers on the network.  Once
received this file, each peer looks for relevant coordination rules
and creates necessary pipe connections.  If a coordination rules file
is received when a peer has already set up coordination rules and
pipes, then it drops 'old' rules and pipes, and creates new ones."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator
from typing import Any

from repro.errors import RuleError
from repro.core.rules import CoordinationRule
from repro.relational.analysis import RuleGraph, is_weakly_acyclic
from repro.relational.parser import parse_mappings


@dataclass
class RuleFile:
    """An ordered collection of coordination rules for a whole network."""

    rules: list[CoordinationRule] = field(default_factory=list)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_text(cls, text: str, *, prefix: str = "r") -> "RuleFile":
        """Parse a rule file; rules get ids ``r0, r1, ...`` in file order."""
        parsed = parse_mappings(text)
        rules = [
            CoordinationRule.from_parsed(f"{prefix}{i}", p)
            for i, p in enumerate(parsed)
        ]
        return cls(rules)

    @classmethod
    def from_texts(cls, texts: Iterable[str], *, prefix: str = "r") -> "RuleFile":
        return cls.from_text("\n".join(texts), prefix=prefix)

    def add(self, rule: CoordinationRule) -> None:
        if any(existing.rule_id == rule.rule_id for existing in self.rules):
            raise RuleError(f"duplicate rule id {rule.rule_id!r} in rule file")
        self.rules.append(rule)

    # -- views --------------------------------------------------------------

    def __iter__(self) -> Iterator[CoordinationRule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def rules_for(self, node: str) -> list[CoordinationRule]:
        """The rules *relevant* to a node: it is target or source."""
        return [r for r in self.rules if node in (r.target, r.source)]

    def peers(self) -> list[str]:
        names: dict[str, None] = {}
        for rule in self.rules:
            names.setdefault(rule.target)
            names.setdefault(rule.source)
        return list(names)

    def acquaintances_of(self, node: str) -> list[str]:
        """Peers this node shares at least one rule with (pipe targets)."""
        others: dict[str, None] = {}
        for rule in self.rules_for(node):
            other = rule.source if rule.target == node else rule.target
            others.setdefault(other)
        return list(others)

    def rule_graph(self) -> RuleGraph:
        return RuleGraph(r.as_network_rule() for r in self.rules)

    def is_weakly_acyclic(self) -> bool:
        """Chase-termination guarantee for this rule set (DESIGN.md)."""
        return is_weakly_acyclic(r.as_network_rule() for r in self.rules)

    def has_cyclic_dependencies(self) -> bool:
        return self.rule_graph().has_cycle()

    # -- wire format ----------------------------------------------------------

    def to_text(self) -> str:
        return "\n".join(rule.to_text() for rule in self.rules)

    def to_payload(self) -> dict[str, Any]:
        return {"rules": [rule.to_payload() for rule in self.rules]}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "RuleFile":
        return cls([CoordinationRule.from_payload(p) for p in payload["rules"]])
