"""Distributed termination detection: diffusing computations.

The paper propagates queries "using [an] extension of [the] 'diffusing
computation' approach [Lynch, 1996]" (§3) and closes cyclic link
dependencies when "all query results did not bring any new data" —
i.e. when the data flow has quiesced.  The classical algorithm for
detecting exactly that is Dijkstra–Scholten acknowledgement counting,
which this module implements, decoupled from any particular protocol:

* Every *engaging* message (update request, query result, link-closed
  notification, ...) must eventually be acknowledged by its receiver.
* The first engaging message that reaches a disengaged node makes the
  sender that node's *parent*; the ack for it is deferred.
* Every other engaging message is acknowledged as soon as its local
  processing finishes.
* A node's *deficit* counts its own sent-but-unacked messages.  When
  an engaged node is passive (between messages) with deficit zero, it
  acknowledges its parent and disengages (it may be re-engaged later).
* The computation's *root* detects termination when it is passive
  with deficit zero: at that point no message is in flight anywhere
  and every node is disengaged — the paper's condition (b) holds
  globally, so remaining cyclic links can be closed.

One :class:`DiffusingComputation` instance lives in each node and
multiplexes any number of concurrent computations by computation id:
every network query AND every concurrent global-update session runs
its own independent Dijkstra–Scholten instance (parent pointer,
deficit counters, engagement flag), so N overlapping updates detect
their N quiescence points independently — a node can be the root of
one computation while an interior participant of several others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.errors import ProtocolError


@dataclass
class _ComputationState:
    engaged: bool = False
    is_root: bool = False
    parent: str | None = None
    deficit: int = 0
    #: Outstanding (unacked) messages per recipient — the failure
    #: detector drains a dead peer's share without waiting forever.
    deficit_by_peer: dict[str, int] = field(default_factory=dict)
    completed: bool = False


class DiffusingComputation:
    """Dijkstra–Scholten bookkeeping for one node.

    Parameters
    ----------
    send_ack:
        Callback ``(recipient, computation_id)`` — deliver one ack.
    on_root_complete:
        Callback ``(computation_id)`` — invoked exactly once, on the
        root node, when global termination is detected.
    """

    def __init__(
        self,
        send_ack: Callable[[str, str], None],
        on_root_complete: Callable[[str], None],
    ) -> None:
        self._send_ack = send_ack
        self._on_root_complete = on_root_complete
        self._computations: dict[str, _ComputationState] = {}

    def _state(self, computation_id: str) -> _ComputationState:
        return self._computations.setdefault(computation_id, _ComputationState())

    # -- root ---------------------------------------------------------------

    def start_root(self, computation_id: str) -> None:
        """Declare this node the root of a new computation."""
        state = self._state(computation_id)
        if state.engaged:
            raise ProtocolError(
                f"computation {computation_id!r} already running here"
            )
        state.engaged = True
        state.is_root = True

    # -- message hooks --------------------------------------------------------

    def on_engaging_message(self, computation_id: str, sender: str) -> bool:
        """Record receipt of an engaging message; returns ``True`` when
        this message is the tree edge (ack deferred).

        Call *before* processing the message; pair each call with one
        :meth:`after_processing`.
        """
        state = self._state(computation_id)
        if not state.engaged:
            state.engaged = True
            state.parent = sender
            return True
        return False

    def after_processing(
        self, computation_id: str, sender: str, was_tree_edge: bool
    ) -> None:
        """Ack non-tree messages; check the leave condition."""
        state = self._state(computation_id)
        if not was_tree_edge:
            self._send_ack(sender, computation_id)
        self.check_quiescence(computation_id)

    def note_sent(
        self, computation_id: str, recipient: str = "", count: int = 1
    ) -> None:
        """Record that *count* engaging messages were just sent to
        *recipient* (tracked per peer for the failure detector)."""
        state = self._state(computation_id)
        state.deficit += count
        if recipient:
            state.deficit_by_peer[recipient] = (
                state.deficit_by_peer.get(recipient, 0) + count
            )

    def on_ack(self, computation_id: str, sender: str = "") -> None:
        state = self._state(computation_id)
        if sender:
            # A late ack from a peer whose share was already written
            # off by the failure detector is a duplicate: ignore it.
            if state.deficit_by_peer.get(sender, 0) <= 0:
                return
            state.deficit_by_peer[sender] -= 1
        state.deficit -= 1
        if state.deficit < 0:
            raise ProtocolError(
                f"computation {computation_id!r}: more acks than messages"
            )
        self.check_quiescence(computation_id)

    # -- quiescence -----------------------------------------------------------

    def check_quiescence(self, computation_id: str) -> None:
        """Leave the computation / detect termination when possible.

        Safe to call at any passive moment (end of every handler).
        """
        state = self._state(computation_id)
        if not state.engaged or state.deficit > 0:
            return
        if state.is_root:
            if not state.completed:
                state.completed = True
                state.engaged = False
                self._on_root_complete(computation_id)
            return
        # Interior node: collapse to parent and disengage.
        parent = state.parent
        state.engaged = False
        state.parent = None
        if parent is not None:
            self._send_ack(parent, computation_id)

    # -- dynamic networks -------------------------------------------------------

    def on_bounce(self, computation_id: str, recipient: str = "") -> None:
        """An engaging message we sent was returned undeliverable.

        Drains the deficit like an ack, but tolerates computations that
        have already been forgotten (the bounce raced completion).
        """
        state = self._computations.get(computation_id)
        if state is None or state.deficit <= 0:
            return
        if recipient:
            # Already written off by the failure detector? Then this
            # bounce's deficit entry is gone; do not drain twice.
            if state.deficit_by_peer.get(recipient, 0) <= 0:
                return
            state.deficit_by_peer[recipient] -= 1
        state.deficit -= 1
        self.check_quiescence(computation_id)

    def on_peer_down(self, peer: str) -> None:
        """Failure-detector notification: *peer* left the network.

        Two effects, across every computation: (1) the dead peer will
        never ack anything, so its outstanding share of our deficit is
        written off; (2) if the dead peer was our parent, nobody needs
        our deferred ack any more — adopt no one and disengage when
        quiescent.
        """
        for computation_id, state in list(self._computations.items()):
            owed = state.deficit_by_peer.pop(peer, 0)
            if owed:
                state.deficit = max(0, state.deficit - owed)
            if state.parent == peer:
                state.parent = None
            if owed or state.engaged:
                self.check_quiescence(computation_id)

    def abandon_all(self) -> list[str]:
        """Release every engaged computation (graceful network leave).

        Sends the deferred parent acks so upstream deficits drain, and
        disengages; returns the abandoned computation ids.
        """
        abandoned = []
        for computation_id, state in list(self._computations.items()):
            if not state.engaged:
                continue
            parent = state.parent
            state.engaged = False
            state.parent = None
            abandoned.append(computation_id)
            if parent is not None:
                self._send_ack(parent, computation_id)
        return abandoned

    # -- introspection ----------------------------------------------------------

    def is_engaged(self, computation_id: str) -> bool:
        state = self._computations.get(computation_id)
        return bool(state and state.engaged)

    def is_completed(self, computation_id: str) -> bool:
        state = self._computations.get(computation_id)
        return bool(state and state.completed)

    def deficit(self, computation_id: str) -> int:
        state = self._computations.get(computation_id)
        return state.deficit if state else 0

    def forget(self, computation_id: str) -> None:
        """Drop bookkeeping for a finished computation."""
        self._computations.pop(computation_id, None)
