"""The coDB protocol layer: nodes, coordination rules, updates, queries.

This package is the paper's primary contribution, built on the
:mod:`repro.p2p` substrate and the :mod:`repro.relational` engine:

* :mod:`rules` / :mod:`rulefile` — coordination rules placed in the
  network, and the rule files the super-peer broadcasts;
* :mod:`links` — per-node incoming/outgoing link state and the
  incoming-on-outgoing dependency relation of §3;
* :mod:`termination` — the diffusing-computation machinery (Dijkstra–
  Scholten acknowledgement counting) behind "the proposed algorithm
  will eventually terminate" (§1);
* :mod:`update` — the global update algorithm of §3;
* :mod:`query` — query-time distributed answering;
* :mod:`topology` — the topology discovery procedure;
* :mod:`statistics` — the per-node statistical module of §4;
* :mod:`node` — the coDB node (P2P layer + DBM + Wrapper, Figure 1);
* :mod:`superpeer` — the demo's super-peer (§4);
* :mod:`network` — a convenience builder tying everything together.
"""

from repro.core.rules import CoordinationRule
from repro.core.rulefile import RuleFile
from repro.core.links import IncomingLink, LinkTable, OutgoingLink
from repro.core.node import CoDBNode
from repro.core.superpeer import SuperPeer
from repro.core.network import CoDBNetwork, UpdateOutcome
from repro.core.statistics import (
    NetworkUpdateReport,
    NodeStatistics,
    UpdateReport,
)

__all__ = [
    "CoordinationRule",
    "RuleFile",
    "IncomingLink",
    "OutgoingLink",
    "LinkTable",
    "CoDBNode",
    "SuperPeer",
    "CoDBNetwork",
    "UpdateOutcome",
    "UpdateReport",
    "NodeStatistics",
    "NetworkUpdateReport",
]
