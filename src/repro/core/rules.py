"""Coordination rules placed in the network.

A :class:`CoordinationRule` binds a GLAV mapping to a (target, source)
pair of peers: the *target* imports data; the *source* is the
acquaintance that "executes the coordination rule and sends the
results back" (§2).  Rules are wire-encodable because the super-peer
broadcasts whole rule files (§4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import RuleError
from repro.relational.analysis import NetworkRule
from repro.relational.conjunctive import GlavMapping
from repro.relational.parser import ParsedMapping, parse_mapping


@dataclass(frozen=True)
class CoordinationRule:
    """One coordination rule: ``rule_id: target ⇐ source : mapping``."""

    rule_id: str
    target: str
    source: str
    mapping: GlavMapping

    def __post_init__(self) -> None:
        if not self.rule_id:
            raise RuleError("a coordination rule needs a rule_id")
        if self.target == self.source:
            raise RuleError(
                f"rule {self.rule_id!r}: target and source are both "
                f"{self.target!r}; coordination rules connect distinct peers"
            )

    # -- construction -----------------------------------------------------

    @classmethod
    def from_text(cls, rule_id: str, text: str) -> "CoordinationRule":
        """Parse ``"TN:resident(n) <- BZ:person(n, c)"`` into a rule."""
        parsed = parse_mapping(text)
        return cls.from_parsed(rule_id, parsed)

    @classmethod
    def from_parsed(cls, rule_id: str, parsed: ParsedMapping) -> "CoordinationRule":
        if parsed.target is None or parsed.source is None:
            raise RuleError(
                f"rule {rule_id!r}: coordination rules need peer prefixes "
                "on both head and body atoms"
            )
        return cls(rule_id, parsed.target, parsed.source, parsed.mapping)

    # -- views --------------------------------------------------------------

    def as_network_rule(self) -> NetworkRule:
        """The analysis-layer view (weak acyclicity, rule graphs)."""
        return NetworkRule(self.rule_id, self.target, self.source, self.mapping)

    def frontier(self) -> tuple[str, ...]:
        """Frontier variables in canonical (sorted) order.

        Query-result messages carry rows of frontier values in exactly
        this order; both end points derive it independently from the
        rule, so nothing order-dependent travels on the wire.
        """
        return tuple(sorted(self.mapping.frontier_variables()))

    # -- wire format ----------------------------------------------------------

    def to_text(self) -> str:
        """Render back to the rule-file syntax (modulo whitespace)."""
        def atom_text(atom, peer: str) -> str:
            terms = ", ".join(_term_text(t) for t in atom.terms)
            return f"{peer}:{atom.relation}({terms})"

        head = ", ".join(atom_text(a, self.target) for a in self.mapping.head)
        body_parts = [atom_text(a, self.source) for a in self.mapping.body]
        body_parts += [
            f"{_term_text(c.left)} {c.op} {_term_text(c.right)}"
            for c in self.mapping.comparisons
        ]
        return f"{head} <- {', '.join(body_parts)}"

    def to_payload(self) -> dict[str, Any]:
        return {"rule_id": self.rule_id, "text": self.to_text()}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CoordinationRule":
        return cls.from_text(payload["rule_id"], payload["text"])


def _term_text(term: Any) -> str:
    from repro.relational.conjunctive import Variable

    if isinstance(term, Variable):
        return term.name
    if isinstance(term, bool):
        return "true" if term else "false"
    if isinstance(term, str):
        escaped = term.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return repr(term)
