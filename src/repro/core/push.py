"""Continuous (push) propagation of local inserts.

The global update is the paper's *batch* materialisation.  Between
batches, a node whose local database changes can push the delta along
its incoming links immediately, keeping downstream materialisations
fresh — the "data migration" role of coordination formulas (§1a),
running continuously.

Semantics: a local insert at node *s* is treated exactly like the
arrival of ``T'`` in §3 — dependent incoming links are recomputed
semi-naively, sent-set dedup applies, the importer ingests with the
usual frontier-row dedup and null minting, and *its* deltas cascade
further.  The flow is monotone and deduplicated, so it quiesces
without needing termination detection (there is no per-push "closed"
state to report; the statistics module counts pushes instead).

Enable with ``NodeConfig(push_on_insert=True)`` (then every
``node.insert`` pushes) or call ``node.push_deltas(...)`` explicitly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import UnknownPeerError
from repro.p2p.messages import Message
from repro.relational.containment import tuple_subsumed
from repro.relational.evaluation import apply_head
from repro.relational.values import MarkedNull, Row, decode_row, encode_row, row_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import CoDBNode

PUSH_KIND = "push_delta"


class PushEngine:
    """Continuous-propagation message processing for one node."""

    def __init__(self, node: "CoDBNode") -> None:
        self.node = node
        self.pushes_sent = 0
        self.pushes_received = 0
        self.rows_pushed = 0
        self.rows_absorbed = 0

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------

    def push_deltas(self, deltas: dict[str, list[Row]]) -> int:
        """Offer *deltas* (``{relation: new rows}``) to dependent
        importers; returns the number of messages sent."""
        node = self.node
        changed = {rel for rel, rows in deltas.items() if rows}
        if not changed:
            return 0
        if node.config.quarantine_inconsistent and not node.wrapper.is_consistent():
            return 0  # §1d: inconsistent data stays local
        sent_messages = 0
        for link in node.links.incoming_dependent_on_relations(changed):
            if link.cache_interest:
                # CUP-style interest-aware propagation: this importer
                # serves cached answers and asked for *invalidations*,
                # not eager rows — ``node.bump_epochs`` (which every
                # caller of push_deltas runs first) already sent the
                # compact notice.  Deliberately do NOT touch the
                # lifetime ``pushed`` memory: the importer's next
                # update or query must still be able to pull these rows.
                # Each withheld push spends the registration's lease —
                # an importer that never refreshes eventually expires
                # and rows flow again (see NodeConfig.interest_lease_events).
                node.pushes_suppressed += 1
                node._spend_interest_lease(link)
                if link.cache_interest:
                    continue
                # The lease just expired: the importer has been told to
                # drop its cached answers — resume pushing rows so it
                # does not silently fall behind from here on.
            produced: dict[Row, None] = {}
            for relation in sorted(
                changed & set(link.rule.mapping.body_relations())
            ):
                frontier = link.rule.frontier()
                for binding in node.wrapper.evaluate_mapping_bindings(
                    link.rule.mapping,
                    changed_relation=relation,
                    delta_rows=deltas[relation],
                    rule_key=link.rule_id,
                ):
                    produced[tuple(binding[n] for n in frontier)] = None
            fresh = [row for row in produced if row_key(row) not in link.pushed]
            if not fresh:
                continue
            link.pushed.update(row_key(row) for row in fresh)
            pipe = node.pipes.pipe_to(link.remote)
            try:
                pipe.send(
                    PUSH_KIND,
                    {
                        "rule_id": link.rule_id,
                        "rows": [encode_row(row) for row in fresh],
                    },
                )
            except UnknownPeerError:
                continue  # importer has left; its link will be re-wired
            sent_messages += 1
            self.pushes_sent += 1
            self.rows_pushed += len(fresh)
        return sent_messages

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------

    def on_push_delta(self, message: Message) -> None:
        node = self.node
        rule_id = message.payload["rule_id"]
        link = node.links.outgoing.get(rule_id)
        if link is None:
            return  # rules changed while the push was in flight
        self.pushes_received += 1
        rows = [decode_row(encoded) for encoded in message.payload["rows"]]
        # The shared lifetime fired-set dedups against everything that
        # ever instantiated this rule here — earlier pushes AND any
        # update session — so continuous mode never re-mints nulls.
        fresh_frontier = [row for row in rows if not link.has_fired(row)]
        for row in fresh_frontier:
            link.mark_fired(row)
        frontier_names = link.rule.frontier()
        bindings = [dict(zip(frontier_names, row)) for row in fresh_frontier]
        facts = apply_head(link.rule.mapping, bindings, node.nulls)
        deltas: dict[str, list[Row]] = {}
        for relation, row in facts:
            if node.config.subsumption_dedup and any(
                isinstance(value, MarkedNull) for value in row
            ):
                if tuple_subsumed(row, node.wrapper._view().relation(relation)):
                    continue
            new_rows = node.wrapper.insert_new(relation, [row])
            if new_rows:
                deltas.setdefault(relation, []).extend(new_rows)
                self.rows_absorbed += len(new_rows)
        if deltas:
            node.bump_epochs(deltas)
            self.push_deltas(deltas)  # cascade onward
