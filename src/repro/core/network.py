"""The network builder: nodes + transport + super-peer, one object.

This is the top of the public API — the programmatic equivalent of the
demo operator who "start[s] up all the nodes, establish[es]
coordination rules between pairs of nodes, run[s] a set of experiments
and, finally, collect[s] statistical information" (§4).

Requests — global updates *and* network queries — are first-class
sessions: :meth:`CoDBNetwork.submit_global_update` and
:meth:`CoDBNetwork.submit_query` return
:class:`~repro.core.requests.RequestHandle`\\ s that can be awaited
individually (``handle.result(timeout=...)``), streamed in completion
order (:func:`repro.core.requests.as_completed`), partitioned
(:func:`repro.core.requests.wait`) or cancelled before admission.
Completion is event-driven on both transports: nodes signal the
per-network progress condition when a session finishes, and every wait
blocks on that condition (TCP) or steps the simulator's event queue —
no sleep-polling anywhere.

The pre-handle blocking surface survives as thin wrappers:
:meth:`~CoDBNetwork.global_update` and :meth:`~CoDBNetwork.query`
submit and immediately await; :meth:`~CoDBNetwork.await_all` is
**deprecated** in favour of ``requests.wait`` / ``as_completed`` and
is kept only so PR-3-era drivers keep working.

The network also owns the shared
:class:`~repro.relational.planner.PlanRegistry`: super-peer broadcast
installs identical rules on many nodes, and sibling stores adopt each
other's compiled join plans instead of recompiling N times.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.node import CoDBNode, NodeConfig
from repro.core.requests import RequestHandle
from repro.core.rulefile import RuleFile
from repro.core.rules import CoordinationRule
from repro.core.statistics import NetworkUpdateReport, aggregate_reports
from repro.core.superpeer import SuperPeer
from repro.errors import ProtocolError
from repro.p2p.ids import IdAuthority
from repro.p2p.inproc import InProcessNetwork, LatencyModel
from repro.p2p.transport import Transport
from repro.relational.conjunctive import ConjunctiveQuery
from repro.relational.planner import PlanRegistry
from repro.relational.schema import DatabaseSchema
from repro.relational.parser import parse_schema
from repro.relational.values import Row
from repro.relational.wrapper import Wrapper

#: Deprecated alias: PR 3's ``UpdateHandle`` is now the unified
#: :class:`~repro.core.requests.RequestHandle` (same ``update_id`` /
#: ``origin`` / ``started_at`` surface, plus ``result()`` / ``done()``
#: / ``cancel()`` / ``add_done_callback()``).
UpdateHandle = RequestHandle


@dataclass
class UpdateOutcome:
    """Everything a benchmark wants to know about one global update."""

    update_id: str
    origin: str
    report: NetworkUpdateReport
    #: Wall time by the transport clock (virtual seconds on the
    #: simulator — deterministic; real seconds over TCP), measured from
    #: this update's submission to the moment its completion was
    #: observed (per handle, even inside a concurrent batch).
    wall_time: float
    #: Transport-level totals for the window, including requests, acks
    #: and completion floods (the statistics module's per-rule numbers
    #: cover result messages only).  Concurrent requests share the
    #: wire, so a batch member's window counts overlapping traffic too.
    transport_messages: int
    transport_bytes: int

    @property
    def result_messages(self) -> int:
        return self.report.total_messages

    @property
    def longest_path(self) -> int:
        return self.report.longest_path

    @property
    def rows_imported(self) -> int:
        return self.report.total_rows_imported


class CoDBNetwork:
    """A coDB network under a single driver object."""

    def __init__(
        self,
        *,
        seed: int = 0,
        transport: Transport | None = None,
        latency: LatencyModel | None = None,
        with_superpeer: bool = True,
        config: NodeConfig | None = None,
        poll_timeout: float = 30.0,
    ) -> None:
        self.transport = transport if transport is not None else InProcessNetwork(
            seed, latency
        )
        self.ids = IdAuthority(seed)
        self.default_config = config
        self.nodes: dict[str, CoDBNode] = {}
        self.rule_file = RuleFile()
        self.poll_timeout = poll_timeout
        self._rule_counter = 0
        #: Shared compiled-plan registry: nodes holding structurally
        #: identical rule bodies (the super-peer broadcast case) adopt
        #: each other's plans instead of recompiling.
        self.plan_registry = PlanRegistry()
        #: In-flight request handles by id, completed event-driven via
        #: the nodes' completion listeners.
        self._handles: dict[str, RequestHandle] = {}
        self.superpeer: SuperPeer | None = None
        if with_superpeer:
            self.superpeer = SuperPeer("superpeer", self.transport, self.ids)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add_node(
        self,
        name: str,
        schema: DatabaseSchema | str,
        *,
        store: Wrapper | None = None,
        facts: str | dict | None = None,
        config: NodeConfig | None = None,
    ) -> CoDBNode:
        """Create and attach a node; optionally bulk-load facts."""
        if name in self.nodes:
            raise ProtocolError(f"node {name!r} already exists")
        if isinstance(schema, str):
            schema = parse_schema(schema)
        node = CoDBNode(
            name,
            schema,
            self.transport,
            self.ids,
            store=store,
            config=config if config is not None else self.default_config,
        )
        self.nodes[name] = node
        node.wrapper.plan_cache.share_with(
            self.plan_registry, node.wrapper.plan_backend
        )
        node.completion_listeners.append(self._on_node_request_complete)
        if facts is not None:
            node.load_facts(facts)
        return node

    def node(self, name: str) -> CoDBNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise ProtocolError(f"unknown node {name!r}") from None

    def add_rule(self, rule: str | CoordinationRule) -> CoordinationRule:
        """Register one coordination rule (text or object)."""
        if isinstance(rule, str):
            rule = CoordinationRule.from_text(f"r{self._rule_counter}", rule)
        self._rule_counter += 1
        for peer in (rule.target, rule.source):
            if peer not in self.nodes:
                raise ProtocolError(
                    f"rule {rule.rule_id!r} references unknown node {peer!r}"
                )
        self.rule_file.add(rule)
        return rule

    def add_rules(self, rules: Sequence[str | CoordinationRule]) -> None:
        for rule in rules:
            self.add_rule(rule)

    def start(self) -> None:
        """Install the current rule file on every node.

        With a super-peer, the file is *broadcast* (the §4 mechanism)
        and nodes self-configure on receipt; without one, the driver
        installs rules directly.
        """
        if self.superpeer is not None:
            self.superpeer.broadcast_rules(self.rule_file)
            self.run()
        else:
            for node in self.nodes.values():
                node.set_rules(self.rule_file.rules)

    def rejoin_node(self, name: str) -> CoDBNode:
        """Drive a departed or crashed node's re-entry: the node
        re-registers on the transport, handshakes with every surviving
        acquaintance (lifetime-memory digests both ways, conservative
        cache/interest resets), and re-arms its admission queue.  The
        handshake traffic settles with the next :meth:`run` /
        :meth:`drain`."""
        node = self.nodes[name]
        node.rejoin()
        return node

    def rewire(self, rule_file: RuleFile | str) -> None:
        """Replace the network's rules at runtime (§4 dynamic topology)."""
        if isinstance(rule_file, str):
            rule_file = RuleFile.from_text(rule_file)
        self.rule_file = rule_file
        if self.superpeer is not None:
            self.superpeer.broadcast_rules(rule_file)
            self.run()
        else:
            for node in self.nodes.values():
                node.set_rules(rule_file.rules)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self) -> int:
        """Pump the transport until idle; returns messages delivered."""
        return self.transport.run_until_idle()

    def _wait(self, predicate) -> None:
        """Block until *predicate* holds, driving the network.

        One implementation for both transports — the event-driven
        :meth:`~repro.p2p.transport.Transport.wait_for` — then drain
        the simulator's remaining events (completion-flood tails) so
        blocking entry points leave the virtual network quiescent,
        exactly as the old poll-everything driver did.
        """
        self.transport.wait_for(
            predicate, self.poll_timeout, description="network operation"
        )
        self._settle()

    def _settle(self) -> None:
        """Drain trailing simulator events (no-op on real transports)."""
        if isinstance(self.transport, InProcessNetwork):
            self.transport.run_until_idle()

    def drain(self, timeout: float | None = None) -> None:
        """Block until every tracked in-flight request has completed.

        The persistent-serve shutdown path: a gateway that stopped
        admitting new work calls this to let the storm land before
        stopping the transport.  Raises
        :class:`~repro.errors.RequestTimeoutError` when *timeout*
        (default: the network's ``poll_timeout``) elapses with requests
        still in flight — the caller then decides whether to cancel the
        stragglers or wait again.
        """
        self._settle()
        self.transport.wait_for(
            lambda: all(h.done() for h in list(self._handles.values())),
            self.poll_timeout if timeout is None else timeout,
            description="network drain",
        )
        self._settle()

    # ------------------------------------------------------------------
    # Request completion plumbing
    # ------------------------------------------------------------------

    def _on_node_request_complete(self, kind: str, request_id: str) -> None:
        """A node finished a session: complete the matching handle.

        For updates the handle's predicate requires *every* alive node
        to be done, so the check runs on each node's completion signal
        and first passes on the last one — that instant (virtual time
        on the simulator) is the recorded completion moment.
        """
        handle = self._handles.get(request_id)
        if handle is not None:
            handle.done()

    def _track(self, handle: RequestHandle) -> RequestHandle:
        self._handles[handle.request_id] = handle
        handle.add_done_callback(
            lambda done_handle: self._handles.pop(done_handle.request_id, None)
        )
        # The request may already be complete — an answer-cache hit
        # finishes inside ``submit_query_id``, before the handle exists,
        # so the node's completion signal found nothing to observe.
        # Check once here or purely callback-driven consumers (the
        # service gateway's asyncio bridge) would never see it settle.
        handle.done()
        return handle

    def _update_done_everywhere(self, update_id: str, origin: str) -> bool:
        """The network-wide completion predicate for one update."""
        alive = [n for n in self.nodes.values() if not n.detached]
        if origin and origin in self.nodes:
            origin_node = self.nodes[origin]
            if not origin_node.detached and not origin_node.update_done(
                update_id
            ):
                return False
        return all(
            n.update_done(update_id) or n.stats.report_for(update_id) is None
            for n in alive
        )

    def _update_outcome(self, handle: RequestHandle) -> UpdateOutcome:
        """Aggregate one update's per-node reports (§4's super-peer
        aggregation) into the caller-facing outcome."""
        update_id = handle.request_id
        reports = [
            report
            for n in self.nodes.values()
            if (report := n.stats.report_for(update_id)) is not None
        ]
        origin = handle.origin or (reports[0].origin if reports else "")
        # Assembly only ever runs on a completed handle, so the stamps
        # taken at completion observation are authoritative — 0.0 / 0
        # are legitimate values (an acquaintance-less origin completes
        # at virtual time zero with no traffic).
        return UpdateOutcome(
            update_id=update_id,
            origin=origin,
            report=aggregate_reports(
                update_id,
                origin,
                reports,
                # An empty BFS result means *topology* shows no cut —
                # defer to the union of per-node views so losses the
                # nodes detected (bounced shipments) still get named.
                unreachable_peers=self._unreachable_from(origin) or None,
            ),
            wall_time=handle.finished_at - handle.started_at,
            transport_messages=handle.messages_after - handle.messages_before,
            transport_bytes=handle.bytes_after - handle.bytes_before,
        )

    def _unreachable_from(self, origin: str) -> list[str] | None:
        """Driver-side reachability: the peers the update CANNOT have
        covered, as seen at aggregation time.

        BFS over the rule topology from *origin*, skipping detached
        (crashed) nodes and edges the transport reports severed by an
        active partition (:meth:`Transport.severed_pairs`).  Whatever
        the rule graph connects to the origin but the BFS cannot reach
        is exactly the severed-or-crashed component — the peers whose
        flow the report would otherwise silently truncate.  Returns
        ``None`` (let per-node local views stand in) when the origin is
        unknown.
        """
        if not origin or origin not in self.nodes:
            return None
        severed = self.transport.severed_pairs()
        neighbours: dict[str, set[str]] = {name: set() for name in self.nodes}
        reachable_edges: dict[str, set[str]] = {
            name: set() for name in self.nodes
        }
        for rule in self.rule_file.rules:
            pair = (rule.source, rule.target)
            for a, b in (pair, pair[::-1]):
                if a in neighbours and b in neighbours:
                    neighbours[a].add(b)
                    if (
                        frozenset((a, b)) not in severed
                        and not self.nodes[a].detached
                        and not self.nodes[b].detached
                    ):
                        reachable_edges[a].add(b)

        def component(edges: dict[str, set[str]], start: str) -> set[str]:
            seen = {start}
            frontier = [start]
            while frontier:
                for peer in edges[frontier.pop()]:
                    if peer not in seen:
                        seen.add(peer)
                        frontier.append(peer)
            return seen

        # Only peers the rule graph actually ties to the origin count:
        # a node in a disjoint rule group was never part of this update.
        in_scope = component(neighbours, origin)
        covered = component(reachable_edges, origin)
        return sorted(in_scope - covered)

    # ------------------------------------------------------------------
    # Global updates
    # ------------------------------------------------------------------

    def submit_global_update(
        self, origin: str, *, tenant: str = ""
    ) -> RequestHandle:
        """Submit one global update from *origin*; returns its handle.

        The handle completes when the update has finished at **every**
        alive node (the completion flood fully propagated, so the §4
        statistics are final); ``result()`` returns the
        :class:`UpdateOutcome`.  Under an admission cap
        (``NodeConfig.max_active_sessions``) the update may wait in the
        origin's queue first — ``cancel()`` withdraws it while it does.
        *tenant* tags the submission for the service gateway's
        per-tenant quotas and metrics.
        """
        node = self.node(origin)
        started_at = self.transport.now()
        messages_before = self.transport.stats.messages_sent
        bytes_before = self.transport.stats.bytes_sent
        update_id = node.submit_update_id(tenant=tenant)
        handle = RequestHandle(
            request_id=update_id,
            kind="update",
            origin=origin,
            transport=self.transport,
            is_done=lambda: self._update_done_everywhere(update_id, origin),
            assemble=self._update_outcome,
            try_cancel=lambda: node.cancel_update(update_id),
            started_at=started_at,
            messages_before=messages_before,
            bytes_before=bytes_before,
            tenant=tenant,
        )
        return self._track(handle)

    def start_global_updates(
        self, origins: Sequence[str]
    ) -> list[RequestHandle]:
        """Submit one global update per origin, WITHOUT waiting.

        All updates are initiated back-to-back before any network
        progress is made, so on the simulator the event queue holds
        every origin's flood and the awaits pump them fairly
        interleaved (events pop in timestamp order); over TCP the
        per-peer delivery threads run the sessions truly in parallel.
        The same origin may appear several times — each occurrence
        starts an independent update session.
        """
        return [self.submit_global_update(origin) for origin in origins]

    def global_update(self, origin: str) -> UpdateOutcome:
        """Run one global update from *origin* to completion
        (blocking wrapper over :meth:`submit_global_update`)."""
        handle = self.submit_global_update(origin)
        outcome = handle.result(self.poll_timeout)
        self._settle()
        return outcome

    def _adopt_update(self, update_id: str) -> RequestHandle:
        """A handle for an update started outside the network API
        (direct node calls); windows start at adoption time."""
        handle = RequestHandle(
            request_id=update_id,
            kind="update",
            origin="",
            transport=self.transport,
            is_done=lambda: self._update_done_everywhere(update_id, ""),
            assemble=self._update_outcome,
            started_at=self.transport.now(),
            messages_before=self.transport.stats.messages_sent,
            bytes_before=self.transport.stats.bytes_sent,
        )
        return self._track(handle)

    def await_all(
        self, handles: Sequence[RequestHandle] | None = None
    ) -> list[UpdateOutcome]:
        """Drive the network until every handle's update completed.

        .. deprecated:: PR 4
            ``await_all`` predates the request-handle API; prefer
            ``handle.result()``, :func:`repro.core.requests.wait` (the
            partitioned wait it is now a wrapper over) or
            :func:`repro.core.requests.as_completed` (streaming, which
            ``await_all`` cannot do).  Kept as a blocking wrapper so
            PR-3 drivers keep working; it will not grow new features.

        With ``handles=None``, waits for every update currently active
        anywhere in the network.  Returns one :class:`UpdateOutcome`
        per handle, in handle order.
        """
        if handles is None:
            handles = [
                self._adopt_update(update_id)
                for node in self.nodes.values()
                for update_id in node.updates.active_ids()
            ]
        handles = list(handles)
        self._wait(lambda: all(handle.done() for handle in handles))
        return [handle.result() for handle in handles]

    def lifetime_totals(self) -> dict[str, dict]:
        """Per-node lifetime aggregates (see
        :meth:`~repro.core.statistics.NodeStatistics.lifetime_totals`)."""
        return {
            name: node.stats.lifetime_totals()
            for name, node in self.nodes.items()
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def submit_query(
        self,
        node_name: str,
        query: str | ConjunctiveQuery,
        *,
        mode: str = "network",
        persist: bool = True,
        cache: bool | None = None,
        tenant: str = "",
    ) -> RequestHandle:
        """Submit *query* at *node_name*; returns its handle.

        ``mode="network"`` (the default here) runs the §3 query-time
        distributed answering as a managed session; ``handle.result()``
        returns the answer rows.  ``mode="local"`` answers from local
        data immediately and returns an already-completed handle, so
        callers can treat both uniformly.  ``cache`` overrides the
        node's ``NodeConfig.answer_cache`` for this one query (``None``
        inherits it); a network-mode cache hit completes without any
        propagation at all.  *tenant* tags the submission for the
        service gateway's per-tenant quotas and metrics.
        """
        node = self.node(node_name)
        if mode == "local":
            node.stats.note_tenant_submission(tenant, "query")
            rows = node.query(query, cache=cache)
            handle = RequestHandle(
                request_id=self.ids.query_id(),
                kind="query",
                origin=node_name,
                transport=self.transport,
                is_done=lambda: True,
                assemble=lambda _handle: rows,
                started_at=self.transport.now(),
                messages_before=self.transport.stats.messages_sent,
                bytes_before=self.transport.stats.bytes_sent,
                tenant=tenant,
            )
            handle.done()
            return handle
        if mode != "network":
            raise ProtocolError(f"unknown query mode {mode!r}")
        started_at = self.transport.now()
        messages_before = self.transport.stats.messages_sent
        bytes_before = self.transport.stats.bytes_sent
        query_id = node.submit_query_id(
            query, persist=persist, cache=cache, tenant=tenant
        )
        handle = RequestHandle(
            request_id=query_id,
            kind="query",
            origin=node_name,
            transport=self.transport,
            is_done=lambda: node.queries.is_done(query_id),
            assemble=lambda _handle: node.network_query_answer(query_id),
            try_cancel=lambda: node.cancel_query(query_id),
            started_at=started_at,
            messages_before=messages_before,
            bytes_before=bytes_before,
            tenant=tenant,
        )
        return self._track(handle)

    def query(
        self,
        node_name: str,
        query: str | ConjunctiveQuery,
        *,
        mode: str = "local",
        persist: bool = True,
        cache: bool | None = None,
    ) -> list[Row]:
        """Answer *query* at *node_name* (blocking wrapper).

        ``mode="local"`` reads only local data; ``mode="network"``
        submits a query session and awaits it (see
        :meth:`submit_query` for the handle-returning form).
        """
        node = self.node(node_name)
        if mode == "local":
            return node.query(query, cache=cache)
        if mode != "network":
            raise ProtocolError(f"unknown query mode {mode!r}")
        handle = self.submit_query(
            node_name, query, mode="network", persist=persist, cache=cache
        )
        answer = handle.result(self.poll_timeout)
        self._settle()
        assert answer is not None
        return answer

    # ------------------------------------------------------------------
    # Statistics & snapshots
    # ------------------------------------------------------------------

    def collect_statistics(self) -> str:
        """Super-peer statistics sweep; returns the collection id."""
        if self.superpeer is None:
            raise ProtocolError("this network was built without a super-peer")
        collection_id = self.superpeer.request_statistics()
        alive = {name for name, node in self.nodes.items() if not node.detached}
        self._wait(
            lambda: alive
            <= set(self.superpeer.collected_reports(collection_id))
        )
        return collection_id

    def snapshot(self) -> dict[str, dict[str, list[Row]]]:
        """``{node: {relation: sorted rows}}`` for the whole network."""
        return {name: node.snapshot() for name, node in self.nodes.items()}

    def total_rows(self) -> int:
        return sum(node.wrapper.total_rows() for node in self.nodes.values())

    def stop(self) -> None:
        self.transport.stop()

    def __enter__(self) -> "CoDBNetwork":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
