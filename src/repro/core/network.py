"""The network builder: nodes + transport + super-peer, one object.

This is the top of the public API — the programmatic equivalent of the
demo operator who "start[s] up all the nodes, establish[es]
coordination rules between pairs of nodes, run[s] a set of experiments
and, finally, collect[s] statistical information" (§4).

Works over both transports: with the default simulated transport every
call that needs network progress pumps the event loop itself, so the
API is synchronous; over TCP the same calls poll for completion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.node import CoDBNode, NodeConfig
from repro.core.rulefile import RuleFile
from repro.core.rules import CoordinationRule
from repro.core.statistics import NetworkUpdateReport
from repro.core.superpeer import SuperPeer
from repro.errors import ProtocolError
from repro.p2p.ids import IdAuthority
from repro.p2p.inproc import InProcessNetwork, LatencyModel
from repro.p2p.transport import Transport
from repro.relational.conjunctive import ConjunctiveQuery
from repro.relational.schema import DatabaseSchema
from repro.relational.parser import parse_schema
from repro.relational.values import Row
from repro.relational.wrapper import Wrapper


@dataclass
class UpdateHandle:
    """A started-but-not-awaited global update (see
    :meth:`CoDBNetwork.start_global_updates`)."""

    update_id: str
    origin: str
    #: Transport clock / counters when the update was started; the
    #: matching :class:`UpdateOutcome` windows are measured from here.
    started_at: float
    messages_before: int
    bytes_before: int


@dataclass
class UpdateOutcome:
    """Everything a benchmark wants to know about one global update."""

    update_id: str
    origin: str
    report: NetworkUpdateReport
    #: Wall time by the transport clock (virtual seconds on the
    #: simulator — deterministic; real seconds over TCP), measured from
    #: this update's start to the await returning.  For updates awaited
    #: as a concurrent batch the window includes the batch overlap.
    wall_time: float
    #: Transport-level totals for the window, including requests, acks
    #: and completion floods (the statistics module's per-rule numbers
    #: cover result messages only).  In a concurrent batch the window
    #: is shared, so these count the whole batch's traffic.
    transport_messages: int
    transport_bytes: int

    @property
    def result_messages(self) -> int:
        return self.report.total_messages

    @property
    def longest_path(self) -> int:
        return self.report.longest_path

    @property
    def rows_imported(self) -> int:
        return self.report.total_rows_imported


class CoDBNetwork:
    """A coDB network under a single driver object."""

    def __init__(
        self,
        *,
        seed: int = 0,
        transport: Transport | None = None,
        latency: LatencyModel | None = None,
        with_superpeer: bool = True,
        config: NodeConfig | None = None,
        poll_timeout: float = 30.0,
    ) -> None:
        self.transport = transport if transport is not None else InProcessNetwork(
            seed, latency
        )
        self.ids = IdAuthority(seed)
        self.default_config = config
        self.nodes: dict[str, CoDBNode] = {}
        self.rule_file = RuleFile()
        self.poll_timeout = poll_timeout
        self._rule_counter = 0
        self.superpeer: SuperPeer | None = None
        if with_superpeer:
            self.superpeer = SuperPeer("superpeer", self.transport, self.ids)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add_node(
        self,
        name: str,
        schema: DatabaseSchema | str,
        *,
        store: Wrapper | None = None,
        facts: str | dict | None = None,
        config: NodeConfig | None = None,
    ) -> CoDBNode:
        """Create and attach a node; optionally bulk-load facts."""
        if name in self.nodes:
            raise ProtocolError(f"node {name!r} already exists")
        if isinstance(schema, str):
            schema = parse_schema(schema)
        node = CoDBNode(
            name,
            schema,
            self.transport,
            self.ids,
            store=store,
            config=config if config is not None else self.default_config,
        )
        self.nodes[name] = node
        if facts is not None:
            node.load_facts(facts)
        return node

    def node(self, name: str) -> CoDBNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise ProtocolError(f"unknown node {name!r}") from None

    def add_rule(self, rule: str | CoordinationRule) -> CoordinationRule:
        """Register one coordination rule (text or object)."""
        if isinstance(rule, str):
            rule = CoordinationRule.from_text(f"r{self._rule_counter}", rule)
        self._rule_counter += 1
        for peer in (rule.target, rule.source):
            if peer not in self.nodes:
                raise ProtocolError(
                    f"rule {rule.rule_id!r} references unknown node {peer!r}"
                )
        self.rule_file.add(rule)
        return rule

    def add_rules(self, rules: Sequence[str | CoordinationRule]) -> None:
        for rule in rules:
            self.add_rule(rule)

    def start(self) -> None:
        """Install the current rule file on every node.

        With a super-peer, the file is *broadcast* (the §4 mechanism)
        and nodes self-configure on receipt; without one, the driver
        installs rules directly.
        """
        if self.superpeer is not None:
            self.superpeer.broadcast_rules(self.rule_file)
            self.run()
        else:
            for node in self.nodes.values():
                node.set_rules(self.rule_file.rules)

    def rewire(self, rule_file: RuleFile | str) -> None:
        """Replace the network's rules at runtime (§4 dynamic topology)."""
        if isinstance(rule_file, str):
            rule_file = RuleFile.from_text(rule_file)
        self.rule_file = rule_file
        if self.superpeer is not None:
            self.superpeer.broadcast_rules(rule_file)
            self.run()
        else:
            for node in self.nodes.values():
                node.set_rules(rule_file.rules)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self) -> int:
        """Pump the transport until idle; returns messages delivered."""
        return self.transport.run_until_idle()

    def _wait(self, predicate) -> None:
        """Run the network until *predicate* holds (poll on TCP)."""
        if isinstance(self.transport, InProcessNetwork):
            self.transport.run_until_idle()
            if not predicate():
                raise ProtocolError(
                    "network went idle before the operation completed"
                )
            return
        deadline = time.monotonic() + self.poll_timeout
        while not predicate():
            if time.monotonic() > deadline:
                raise ProtocolError(
                    f"operation did not complete within {self.poll_timeout}s"
                )
            time.sleep(0.002)

    # ------------------------------------------------------------------
    # Global updates
    # ------------------------------------------------------------------

    def global_update(self, origin: str) -> UpdateOutcome:
        """Run one global update from *origin* to completion."""
        (handle,) = self.start_global_updates([origin])
        (outcome,) = self.await_all([handle])
        return outcome

    def start_global_updates(
        self, origins: Sequence[str]
    ) -> list[UpdateHandle]:
        """Start one global update per origin, WITHOUT waiting.

        All updates are initiated back-to-back before any network
        progress is made, so on the simulator the event queue holds
        every origin's flood and :meth:`await_all` pumps them fairly
        interleaved (events pop in timestamp order); over TCP the
        per-peer delivery threads run the sessions truly in parallel.
        The same origin may appear several times — each occurrence
        starts an independent update session.
        """
        handles = []
        for origin in origins:
            node = self.node(origin)
            handle = UpdateHandle(
                update_id="",
                origin=origin,
                started_at=self.transport.now(),
                messages_before=self.transport.stats.messages_sent,
                bytes_before=self.transport.stats.bytes_sent,
            )
            handle.update_id = node.start_global_update()
            handles.append(handle)
        return handles

    def await_all(
        self, handles: Sequence[UpdateHandle] | None = None
    ) -> list[UpdateOutcome]:
        """Drive the network until every handle's update completed.

        With ``handles=None``, waits for every update currently active
        anywhere in the network.  Returns one :class:`UpdateOutcome`
        per handle, in handle order, each aggregating the per-node
        reports for that update id (the super-peer aggregation of §4).
        """
        if handles is None:
            handles = [
                UpdateHandle(
                    update_id=update_id,
                    origin="",
                    started_at=self.transport.now(),
                    messages_before=self.transport.stats.messages_sent,
                    bytes_before=self.transport.stats.bytes_sent,
                )
                for node in self.nodes.values()
                for update_id in node.updates.active_ids()
            ]

        def update_complete(update_id: str, origin: str) -> bool:
            alive = [n for n in self.nodes.values() if not n.detached]
            if origin and origin in self.nodes:
                origin_node = self.nodes[origin]
                if not origin_node.detached and not origin_node.update_done(
                    update_id
                ):
                    return False
            return all(
                n.update_done(update_id) or n.stats.report_for(update_id) is None
                for n in alive
            )

        self._wait(
            lambda: all(
                update_complete(handle.update_id, handle.origin)
                for handle in handles
            )
        )
        finished = self.transport.now()
        from repro.core.statistics import aggregate_reports

        outcomes = []
        for handle in handles:
            reports = [
                report
                for n in self.nodes.values()
                if (report := n.stats.report_for(handle.update_id)) is not None
            ]
            origin = handle.origin or (reports[0].origin if reports else "")
            outcomes.append(
                UpdateOutcome(
                    update_id=handle.update_id,
                    origin=origin,
                    report=aggregate_reports(handle.update_id, origin, reports),
                    wall_time=finished - handle.started_at,
                    transport_messages=(
                        self.transport.stats.messages_sent - handle.messages_before
                    ),
                    transport_bytes=(
                        self.transport.stats.bytes_sent - handle.bytes_before
                    ),
                )
            )
        return outcomes

    def lifetime_totals(self) -> dict[str, dict]:
        """Per-node lifetime aggregates (see
        :meth:`~repro.core.statistics.NodeStatistics.lifetime_totals`)."""
        return {
            name: node.stats.lifetime_totals()
            for name, node in self.nodes.items()
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self,
        node_name: str,
        query: str | ConjunctiveQuery,
        *,
        mode: str = "local",
        persist: bool = True,
    ) -> list[Row]:
        """Answer *query* at *node_name*.

        ``mode="local"`` reads only local data; ``mode="network"``
        runs the query-time distributed answering of §3.
        """
        node = self.node(node_name)
        if mode == "local":
            return node.query(query)
        if mode != "network":
            raise ProtocolError(f"unknown query mode {mode!r}")
        query_id = node.start_network_query(query, persist=persist)
        self._wait(lambda: node.queries.is_done(query_id))
        answer = node.network_query_answer(query_id)
        assert answer is not None
        return answer

    # ------------------------------------------------------------------
    # Statistics & snapshots
    # ------------------------------------------------------------------

    def collect_statistics(self) -> str:
        """Super-peer statistics sweep; returns the collection id."""
        if self.superpeer is None:
            raise ProtocolError("this network was built without a super-peer")
        collection_id = self.superpeer.request_statistics()
        alive = {name for name, node in self.nodes.items() if not node.detached}
        self._wait(
            lambda: alive
            <= set(self.superpeer.collected_reports(collection_id))
        )
        return collection_id

    def snapshot(self) -> dict[str, dict[str, list[Row]]]:
        """``{node: {relation: sorted rows}}`` for the whole network."""
        return {name: node.snapshot() for name, node in self.nodes.items()}

    def total_rows(self) -> int:
        return sum(node.wrapper.total_rows() for node in self.nodes.values())

    def stop(self) -> None:
        self.transport.stop()

    def __enter__(self) -> "CoDBNetwork":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
