"""The coDB node: Figure 1's P2P Layer + Wrapper + LDB, in one object.

A node owns:

* a **Wrapper** over its local database (memory, sqlite, or mediator);
* an **endpoint** on the transport (the JXTA Layer), with pipes to its
  acquaintances and a discovery service;
* a **link table** derived from its coordination rules;
* the **DBM** role: the update and query engines, driven purely by
  message handlers, plus the termination detector they share;
* the **statistics module** of §4.

The "UI" operations of §2 — pose queries, start updates, change rules,
trigger discovery, read reports — are the public methods.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.core.answercache import DEFAULT_CACHE_SIZE, AnswerCache
from repro.core.links import LinkTable, memory_digest
from repro.core.push import PUSH_KIND, PushEngine
from repro.core.query import QUERY_KINDS, QueryEngine
from repro.core.requests import AdmissionControl, RequestHandle
from repro.core.rulefile import RuleFile
from repro.core.rules import CoordinationRule
from repro.core.statistics import NodeStatistics, UpdateReport
from repro.core.termination import DiffusingComputation
from repro.core.topology import TopologyDiscovery
from repro.core.update import UPDATE_KINDS, UpdateManager
from repro.errors import ProtocolError, RuleError
from repro.p2p.advertisements import PeerAdvertisement
from repro.p2p.discovery import DiscoveryService
from repro.p2p.endpoint import Endpoint
from repro.p2p.ids import IdAuthority
from repro.p2p.messages import Message
from repro.p2p.pipes import PipeTable
from repro.p2p.transport import Transport
from repro.relational.conjunctive import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.nulls import NullFactory
from repro.relational.parser import parse_facts, parse_query
from repro.relational.schema import DatabaseSchema
from repro.relational.values import Row, Value
from repro.relational.wrapper import MemoryStore, Wrapper


@dataclass
class NodeConfig:
    """Tunables for one node (ablation benches flip these).

    Attributes
    ----------
    semi_naive:
        Re-evaluate dependent incoming links only on the delta
        ("substituting R by T'", §3).  Off = recompute in full on every
        change (ablation E10).
    sent_dedup:
        Keep per-incoming-link sent-sets ("delete from Ri those tuples
        which have been already sent", §3).  Off = resend everything
        each round (ablation E10).
    subsumption_dedup:
        Drop an imported null-carrying tuple if an existing tuple
        subsumes it (restricted-chase remedy for non-weakly-acyclic
        rule sets, ablation E11).
    fixpoint_guard:
        Per-node bound on processed result messages per update; trips
        :class:`~repro.errors.FixpointGuardError` instead of diverging.
    batch_rows:
        Maximum frontier rows per ``query_result`` message; ``0`` means
        unbounded (one message per evaluation).  Bounds the §4 "volume
        of the data in each message" at the cost of more messages.
    push_on_insert:
        Propagate local inserts along already-activated incoming links
        immediately (continuous/subscription mode), without waiting
        for the next global update.
    quarantine_inconsistent:
        "Local inconsistency does not propagate" (§1d): a node whose
        local database violates its declared key constraints serves
        empty results on its incoming links until repaired.  The check
        is skipped entirely for schemas without keys.
    minimize_rule_bodies:
        Minimise the body of every installed rule to its core
        (Chandra–Merlin) before evaluation.  Redundant body atoms cost
        a join per activation and per delta batch; minimisation is
        equivalence-preserving, so results never change.
    max_active_sessions:
        Admission cap: the most sessions (global-update engines plus
        network-query participations) this node runs at once; ``0``
        means unbounded.  Excess requests wait in a FIFO admission
        queue drained in global id-seniority order — an update storm
        degrades into a pipeline instead of thrashing (see
        :mod:`repro.core.requests`).
    resend_suppression:
        Teach-forward dedup across *updates*: when evaluating a link,
        skip rows the link's lifetime ``pushed`` memory says a previous
        session already delivered — the importer's ``fired`` set would
        mint nothing for them anyway.  Rows taught during a session
        that ends in failure are forgotten again (see
        :meth:`repro.core.links.LinkSession.close_incoming`), so a
        healed partition still converges to ``complete``.  Only active
        together with ``sent_dedup`` (the E10 ablation measures
        resends; this must not mask it).
    answer_cache:
        The read-side twin of ``resend_suppression``: keep a per-node
        LRU of query answers keyed on the query structure plus the
        epoch vector of its body relations
        (:mod:`repro.core.answercache`).  Epochs advance on every
        mutation, so a cached answer can never survive a write it
        depends on; staleness from *remote* writes arrives as taught
        rows or compact ``invalidation`` messages, either of which
        bumps the local epochs.  ``submit_query(cache=False)``
        bypasses the cache per call.
    answer_cache_size:
        Bound on cached entries per node (LRU beyond it).
    invalidation_batching:
        Coalesce the compact ``invalidation`` notices of one write
        burst (one ``bump_epochs`` flush window — a ``load_facts``
        batch, one delta-ingest message, one cascading push) into a
        single message per interested importer, instead of one message
        per link.  The window adapts to the burst: a single-row insert
        still sends one small notice, a thousand-row ingest touching
        five rules toward one importer sends one message carrying five
        notices.  Counters ``invalidation_batches`` /
        ``invalidations_coalesced`` ride ``lifetime_totals()``.
    interest_lease_events:
        Event-count lease attached to CUP-style interest registrations
        (the read-side registration this node sends upstream).  The
        upstream side spends one unit per event it *suppresses* for us
        (a notified-deduped write, a withheld continuous push); at zero
        it drops the registration and sends a final unconditional
        invalidation, so an idle cached reader stops suppressing
        upstream pushes forever.  Refreshed by re-registration on the
        next cache fill.  ``0`` = no lease (registrations live until
        invalidated, the pre-lease behaviour).
    """

    semi_naive: bool = True
    sent_dedup: bool = True
    subsumption_dedup: bool = False
    fixpoint_guard: int = 100_000
    batch_rows: int = 0
    push_on_insert: bool = False
    quarantine_inconsistent: bool = True
    minimize_rule_bodies: bool = False
    max_active_sessions: int = 0
    resend_suppression: bool = True
    answer_cache: bool = True
    answer_cache_size: int = DEFAULT_CACHE_SIZE
    invalidation_batching: bool = True
    interest_lease_events: int = 256


class CoDBNode:
    """One coDB peer.  See module docstring."""

    #: Retransmission attempts per bounced control message (ack /
    #: update_complete) before giving up and deferring to failure
    #: write-offs.  Bounded so a dead link can never livelock.
    RESEND_LIMIT = 5

    def __init__(
        self,
        name: str,
        schema: DatabaseSchema,
        transport: Transport,
        ids: IdAuthority,
        *,
        store: Wrapper | None = None,
        config: NodeConfig | None = None,
    ) -> None:
        if not name.isidentifier():
            raise ProtocolError(
                f"node name {name!r} must be an identifier (it doubles "
                "as the peer prefix in rule syntax)"
            )
        self.name = name
        self.config = config if config is not None else NodeConfig()
        #: Set when the node leaves the network (drivers skip it).
        self.detached = False
        #: Peers a failure detector reported down (``peer_down``); a
        #: bounced ack toward one of these is *not* retransmitted —
        #: its deficits were written off when the notice arrived.
        self._down_peers: set[str] = set()
        #: Bounded retransmission ledger for bounced control messages,
        #: keyed by (kind, peer, computation_id).
        self._resend_budget: dict[tuple[str, str, str], int] = {}
        #: Serialises this node's DBM: over TCP, the delivery thread
        #: runs handlers while the driver thread calls the public API
        #: (start updates/queries, local inserts).  One reentrant lock
        #: per node keeps the actor discipline without giving up
        #: cross-node parallelism.  Uncontended on the simulator.
        self._lock = threading.RLock()
        self.wrapper = store if store is not None else MemoryStore(schema)
        if self.wrapper.schema is not schema:
            raise RuleError(
                f"node {name!r}: the store was built for a different schema"
            )
        self.endpoint = Endpoint(name, transport, ids)
        self.pipes = PipeTable(self.endpoint)
        self.discovery = DiscoveryService(self.endpoint, self._advertisement())
        self.nulls = NullFactory(name)
        self.stats = NodeStatistics(name)
        # lifetime_totals() shows where this node's compiled plans ran.
        self.stats.dispatch_source = self.wrapper.dispatch_counts
        #: Epoch-keyed answer cache (read-side suppression twin); the
        #: epochs are maintained even when caching is disabled so an
        #: ablation flip mid-run starts from honest versions.
        self.cache = AnswerCache(
            self.config.answer_cache_size, enabled=self.config.answer_cache
        )
        #: CUP-style interest-protocol counters (cache counters live on
        #: the cache itself; these are the link-traffic side).
        self.invalidations_sent = 0
        self.invalidations_received = 0
        self.pushes_suppressed = 0
        self.invalidation_batches = 0
        self.invalidations_coalesced = 0
        self.interest_leases_expired = 0
        self.stats.cache_source = self.cache_counters
        self.links = LinkTable(name, [])
        self.termination = DiffusingComputation(
            self.send_ack, self._on_root_complete
        )
        #: Per-node admission layer shared by the update and query
        #: engines (``config.max_active_sessions``).
        self.admission = AdmissionControl(self)
        #: ``(kind, request_id)`` callbacks fired when a session this
        #: node roots (queries) or participates in (updates) finishes
        #: here; the network layer subscribes to complete its request
        #: handles event-driven.
        self.completion_listeners: list = []
        self.updates = UpdateManager(self)
        self.queries = QueryEngine(self)
        self.push = PushEngine(self)
        self.topology = TopologyDiscovery(self)
        self._wire_handlers()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _advertisement(self) -> PeerAdvertisement:
        exported = tuple(
            (relation.name, relation.arity)
            for relation in self.wrapper.schema.exported_view()
        )
        return PeerAdvertisement(
            peer_id=self.name,
            name=self.name,
            exported_relations=exported,
            properties=(
                (
                    "answer_cache",
                    "on" if self.config.answer_cache else "off",
                ),
            ),
        )

    def _wire_handlers(self) -> None:
        engine_handlers = {
            "update_request": self.updates.on_update_request,
            "query_result": self.updates.on_query_result,
            "link_closed": self.updates.on_link_closed,
            "update_complete": self.updates.on_update_complete,
            "query_request": self.queries.on_query_request,
            "query_data": self.queries.on_query_data,
            "query_complete": self.queries.on_query_complete,
        }
        assert set(engine_handlers) == set(UPDATE_KINDS) | set(QUERY_KINDS)
        for kind, handler in engine_handlers.items():
            self.endpoint.on(kind, self._with_pipe_accounting(handler))
        self.endpoint.on(
            PUSH_KIND, self._with_pipe_accounting(self.push.on_push_delta)
        )
        self.endpoint.on("ack", self._locked(self._on_ack))
        self.endpoint.on("rules_file", self._locked(self._on_rules_file))
        self.endpoint.on("stats_request", self._locked(self._on_stats_request))
        self.endpoint.on("undeliverable", self._locked(self._on_undeliverable))
        self.endpoint.on("peer_down", self._locked(self._on_peer_down))
        self.endpoint.on("invalidation", self._locked(self._on_invalidation))
        self.endpoint.on("rejoin", self._locked(self._on_rejoin))

    def _locked(self, handler):
        def wrapped(message: Message) -> None:
            with self._lock:
                handler(message)

        return wrapped

    def _with_pipe_accounting(self, handler):
        def wrapped(message: Message) -> None:
            with self._lock:
                # Hearing from a peer proves it reachable again (a
                # healed partition): ack retransmission toward it must
                # resume, and the answer cache floods conservatively.
                self._note_reachable(message.sender)
                self.pipes.note_received(message)
                handler(message)

        return wrapped

    def _note_reachable(self, peer: str) -> None:
        """First contact from a peer the failure detector had written
        off: a partition healed.  Invalidations toward us may have been
        lost while the cut stood, so the answer cache falls back to
        flood — every epoch advances, every entry drops — and the
        interest protocol resets to re-register from scratch."""
        if peer not in self._down_peers:
            return
        self._down_peers.discard(peer)
        self.cache.bump_all()
        for link in self.links.outgoing.values():
            if link.remote == peer:
                link.registered = False
        for link in self.links.incoming.values():
            if link.remote == peer:
                link.cache_interest = False
                link.notified.clear()

    # ------------------------------------------------------------------
    # Termination plumbing shared by both engines
    # ------------------------------------------------------------------

    def send_ack(self, recipient: str, computation_id: str) -> None:
        # try_send: acking a peer that just left must not crash the
        # handler — the departed peer no longer counts deficits anyway.
        self.endpoint.try_send(
            recipient, "ack", {"computation_id": computation_id}
        )

    def _on_ack(self, message: Message) -> None:
        computation_id = message.payload["computation_id"]
        self._note_reachable(message.sender)
        self.termination.on_ack(computation_id, message.sender)
        # An ack can be the event that disengages a failure-touched
        # update session whose links are already closed — the last
        # chance to self-finalize when the origin's completion flood
        # cannot reach us (no-op for healthy sessions and queries).
        self.updates.maybe_finalize_after_failure(computation_id)

    def _on_root_complete(self, computation_id: str) -> None:
        if computation_id.startswith("update"):
            self.updates.root_complete(computation_id)
        elif computation_id.startswith("query"):
            self.queries.root_complete(computation_id)
        else:  # pragma: no cover - ids come from IdAuthority
            raise ProtocolError(
                f"unrecognised computation id {computation_id!r}"
            )

    def _on_undeliverable(self, message: Message) -> None:
        """A message we sent bounced: the recipient left the network.

        The paper claims the algorithm terminates "even if nodes and
        coordination rules appear or disappear during the computation"
        (§1).  The transport returns undeliverable protocol messages to
        the sender; we drain the termination deficit they left behind
        and close the links toward the departed peer so closure
        cascades are not blocked forever.
        """
        original_kind = message.payload.get("kind", "")
        payload = message.payload.get("payload", {})
        dead_peer = message.payload.get("recipient", "")
        if original_kind == "ack":
            # A reliable wire retransmits acknowledgements: a
            # fault-injected bounce (loss, flap, fresh partition) would
            # otherwise leave the Dijkstra–Scholten deficit at the far
            # side unpaid forever.  A peer the failure detector already
            # reported down wrote those deficits off — no resend.  The
            # budget bounds retransmission so a dead link (or a stale
            # in-flight message racing the peer_down notice) cannot
            # livelock the simulator: once it runs out, the far side's
            # own failure handling covers the deficit.
            computation_id = payload.get("computation_id", "")
            if dead_peer not in self._down_peers and self._spend_resend(
                "ack", dead_peer, computation_id
            ):
                self.send_ack(dead_peer, computation_id)
            return
        if original_kind == "update_complete":
            # Same retransmission logic for the completion flood: a
            # lost update_complete would strand the subtree behind it.
            if dead_peer not in self._down_peers and self._spend_resend(
                "update_complete", dead_peer, payload.get("update_id", "")
            ):
                self.endpoint.try_send(dead_peer, "update_complete", payload)
            return
        if original_kind == "invalidation":
            # Conservative fallback either way: a bounced registration
            # means we are NOT registered upstream (re-register on the
            # next fill); a bounced data invalidation means the
            # importer may now be stale without knowing — drop its
            # registration so the next change floods rows instead.
            rule_id = payload.get("rule_id", "")
            if payload.get("op") == "register":
                outgoing = self.links.outgoing.get(rule_id)
                if outgoing is not None:
                    outgoing.registered = False
            else:
                incoming = self.links.incoming.get(rule_id)
                if incoming is not None:
                    incoming.cache_interest = False
                    incoming.notified.clear()
            return
        computation_id = payload.get("update_id") or payload.get("query_id")
        if original_kind in ("update_request", "query_result", "link_closed",
                             "query_request", "query_data"):
            if computation_id:
                self.termination.on_bounce(computation_id, dead_peer)
        if original_kind in ("update_request", "query_result", "link_closed"):
            self.updates.on_peer_unreachable(computation_id or "", dead_peer)

    def _spend_resend(
        self, kind: str, peer: str, computation_id: str
    ) -> bool:
        """Draw one unit of retransmission budget for a bounced control
        message.  Returns False once the budget for this (kind, peer,
        computation) is spent — the caller then drops the message and
        relies on failure write-offs for termination."""
        key = (kind, peer, computation_id)
        used = self._resend_budget.get(key, 0)
        if used >= self.RESEND_LIMIT:
            return False
        self._resend_budget[key] = used + 1
        return True

    def _on_peer_down(self, message: Message) -> None:
        """Failure-detector notification: a peer left the network."""
        dead_peer = message.payload["peer"]
        self._down_peers.add(dead_peer)
        self.termination.on_peer_down(dead_peer)
        self.updates.on_peer_down(dead_peer)
        self.queries.on_peer_down(dead_peer)
        self.admission.on_peer_down(dead_peer)
        self.cache_fault_fallback(dead_peer)

    # ------------------------------------------------------------------
    # Answer cache: epochs, interest registration, invalidation fan-out
    # ------------------------------------------------------------------

    def cache_fault_fallback(self, peer: str) -> None:
        """Conservative cache fallback on any reachability change
        involving *peer* (failure-detector notice, bounced session
        traffic): a recompute could legitimately answer differently
        than any cached fill — flood (drop everything) rather than
        risk serving an answer the lost peer contributed to, and reset
        the interest protocol on the links toward it."""
        self.cache.bump_all()
        for link in self.links.outgoing.values():
            if link.remote == peer:
                link.registered = False
        for link in self.links.incoming.values():
            if link.remote == peer:
                link.cache_interest = False
                link.notified.clear()

    def bump_epochs(self, relations: Iterable[str]) -> None:
        """Advance the answer-cache epoch of every relation in
        *relations* (dropping the cached answers stamped with them) and
        fan compact ``invalidation`` messages out to downstream links
        whose importer registered cache interest.

        This is THE mutation hook: every write path — local insert,
        ``load_facts``, update-session delta ingest, continuous-mode
        push ingest, query-time import, the non-persistent rollback —
        routes its changed relations through here (callers hold the
        node lock).  One call is one flush window: with
        ``config.invalidation_batching`` the per-link notices it
        produces are coalesced into a single message per importer, so
        a write burst that stales several rules toward one peer costs
        one message, not one per rule.
        """
        changed = {relation for relation in relations if relation}
        if not changed:
            return
        self.cache.invalidate(changed)
        #: importer peer -> [(link, its stale head relations)]
        notices: dict[str, list] = {}
        for link in self.links.incoming_dependent_on_relations(changed):
            if not link.cache_interest:
                continue
            heads = link.rule.mapping.head_relations()
            if all(head in link.notified for head in heads):
                # The importer already knows it is stale; this event is
                # suppressed on its behalf — spend its lease.
                self._spend_interest_lease(link)
                continue
            link.notified.update(heads)
            notices.setdefault(link.remote, []).append((link, list(heads)))
        for remote, batch in notices.items():
            self._send_invalidations(remote, batch)

    def _send_invalidations(self, remote: str, batch: list) -> None:
        """Ship one flush window's notices toward one importer: a
        single grouped message under ``invalidation_batching``, one
        message per link otherwise (the ablation keeps the old wire
        shape measurable)."""
        if self.config.invalidation_batching:
            payload = {
                "notices": [
                    {"rule_id": link.rule_id, "relations": heads}
                    for link, heads in batch
                ]
            }
            sent = self.endpoint.try_send(remote, "invalidation", payload)
            if sent is None:
                # The importer left: flood fallback on re-acquaintance.
                for link, _heads in batch:
                    link.cache_interest = False
                    link.notified.clear()
            else:
                self.invalidations_sent += len(batch)
                self.invalidation_batches += 1
                self.invalidations_coalesced += len(batch) - 1
            return
        for link, heads in batch:
            sent = self.endpoint.try_send(
                remote,
                "invalidation",
                {"rule_id": link.rule_id, "relations": heads},
            )
            if sent is None:
                link.cache_interest = False
                link.notified.clear()
            else:
                self.invalidations_sent += 1
                self.invalidation_batches += 1

    def _spend_interest_lease(self, link) -> None:
        """One suppressed event against *link*'s registration: draw on
        its lease, expiring the registration when it runs out.  A zero
        lease (no lease) never expires."""
        if link.lease_remaining <= 0:
            return
        link.lease_remaining -= 1
        if link.lease_remaining > 0:
            return
        # Lease exhausted: drop the interest and tell the importer with
        # a final *unconditional* invalidation (ignoring the notified
        # dedup) listing every head the link can write — the importer
        # bumps those epochs and clears its ``registered`` flag, so any
        # cached answer it still holds through this link dies and its
        # next fill re-registers with a fresh lease.
        link.cache_interest = False
        link.notified.clear()
        self.interest_leases_expired += 1
        heads = list(link.rule.mapping.head_relations())
        sent = self.endpoint.try_send(
            link.remote,
            "invalidation",
            {"rule_id": link.rule_id, "relations": heads},
        )
        if sent is not None:
            self.invalidations_sent += 1
            self.invalidation_batches += 1

    def register_cache_interest(self, relations: Iterable[str]) -> None:
        """Register CUP-style invalidation interest upstream on every
        outgoing link whose rule head feeds *relations* (the body of an
        answer this node just cached).  The upstream side will send a
        compact ``invalidation`` — instead of eager row pushes — when
        its data changes; this node pulls afresh on the cache miss.
        The registration carries this node's
        ``config.interest_lease_events`` as a renewable suppression
        lease (see :class:`NodeConfig`)."""
        targets = set(relations)
        for link in self.links.outgoing.values():
            if link.registered:
                continue
            if not targets & set(link.rule.mapping.head_relations()):
                continue
            sent = self.endpoint.try_send(
                link.remote,
                "invalidation",
                {
                    "op": "register",
                    "rule_id": link.rule_id,
                    "lease": self.config.interest_lease_events,
                },
            )
            if sent is not None:
                link.registered = True

    def _on_invalidation(self, message: Message) -> None:
        """Both halves of the interest protocol ride one kind.

        ``op="register"`` — the importer on one of our incoming links
        serves cached answers derived through it; remember its interest
        (and re-arm the per-registration notification dedup and its
        suppression lease).  Anything else is a data invalidation *to*
        us — a single notice, or a batched flush window carrying
        several under ``"notices"``: data we imported through the named
        outgoing links went stale upstream — bump the head relations'
        epochs (cascading to our own registrants, themselves batched
        because the cascade is one ``bump_epochs`` call) and drop our
        registrations so the next cache fill re-registers.
        """
        payload = message.payload
        if payload.get("op") == "register":
            link = self.links.incoming.get(payload.get("rule_id", ""))
            if link is not None:
                link.cache_interest = True
                link.notified.clear()
                link.lease_remaining = int(
                    payload.get("lease", self.config.interest_lease_events)
                )
                # Interest is transitive: the importer's cached answer
                # depends on whatever *we* would pull afresh to serve
                # this link, so register our own interest upstream on
                # the rule's body relations.  The per-link
                # ``registered`` flag terminates cycles.
                self.register_cache_interest(
                    link.rule.mapping.body_relations()
                )
            return
        notices = payload.get("notices")
        if notices is None:
            notices = [payload]
        schema = self.wrapper.schema
        stale: set[str] = set()
        for notice in notices:
            self.invalidations_received += 1
            outgoing = self.links.outgoing.get(notice.get("rule_id", ""))
            if outgoing is not None:
                outgoing.registered = False
            stale.update(
                relation
                for relation in notice.get("relations", ())
                if relation in schema
            )
        self.bump_epochs(stale)

    def cache_counters(self) -> dict[str, int]:
        """Cache + interest-protocol lifetime counters, merged into
        ``NodeStatistics.lifetime_totals()`` via ``cache_source``."""
        counters = self.cache.counters()
        counters["invalidations_sent"] = self.invalidations_sent
        counters["invalidations_received"] = self.invalidations_received
        counters["pushes_suppressed"] = self.pushes_suppressed
        counters["invalidation_batches"] = self.invalidation_batches
        counters["invalidations_coalesced"] = self.invalidations_coalesced
        counters["interest_leases_expired"] = self.interest_leases_expired
        return counters

    # ------------------------------------------------------------------
    # Request completion signaling (the handle API's event source)
    # ------------------------------------------------------------------

    def notify_request_complete(self, kind: str, request_id: str) -> None:
        """A session finished at this node: tell listeners and wake
        every driver blocked on the transport's progress condition."""
        for listener in list(self.completion_listeners):
            listener(kind, request_id)
        self.endpoint.transport.notify_progress()

    def _register_handle(self, handle: RequestHandle) -> None:
        """Mark *handle* done the moment a completion signal makes its
        predicate true (exact completion order on the simulator)."""

        def on_complete(kind: str, request_id: str) -> None:
            if request_id == handle.request_id and handle.done():
                try:
                    self.completion_listeners.remove(on_complete)
                except ValueError:  # pragma: no cover - already removed
                    pass

        self.completion_listeners.append(on_complete)
        handle.add_done_callback(
            lambda _handle: on_complete("", _handle.request_id)
        )

    # ------------------------------------------------------------------
    # Rules management ("user can modify the set of coordination rules")
    # ------------------------------------------------------------------

    def set_rules(self, rules: Iterable[CoordinationRule]) -> None:
        """Install *rules* (those relevant to this node), re-wiring pipes.

        §4: on receiving a rules file "each peer looks for relevant
        coordination rules and creates necessary pipe connections ...
        it drops 'old' rules and pipes, and creates new ones, where
        necessary".
        """
        relevant = [r for r in rules if self.name in (r.target, r.source)]
        if self.config.minimize_rule_bodies:
            from repro.relational.minimize import minimize_mapping

            relevant = [
                CoordinationRule(
                    rule.rule_id,
                    rule.target,
                    rule.source,
                    minimize_mapping(rule.mapping),
                )
                for rule in relevant
            ]
        for rule in relevant:
            self._validate_rule(rule)
        with self._lock:
            self.pipes.drop_all()
            self.links = LinkTable(self.name, relevant)
            for rule_id, link in self.links.outgoing.items():
                self.pipes.pipe_to(link.remote, rule_id=rule_id)
            for rule_id, link in self.links.incoming.items():
                self.pipes.pipe_to(link.remote, rule_id=rule_id)
            # Live update sessions keep running across a rewire: rebind
            # their link views to the new table (§4 dynamic topology).
            self.updates.on_rules_changed()
            # A rule change can shift the derivable content of ANY
            # relation — flood the answer cache rather than reason
            # about which heads moved (registrations died with the old
            # link objects; importers re-register on their next fill).
            self.cache.bump_all()

    def _validate_rule(self, rule: CoordinationRule) -> None:
        """Each side validates its own half of the mapping.

        The target owns the head (its schema), the source owns the
        body (its *exported* schema) — neither needs the other's full
        schema, which is what makes rule installation decentralised.
        """
        from repro.errors import ArityError

        schema = self.wrapper.schema
        if rule.target == self.name:
            for atom in rule.mapping.head:
                relation = schema[atom.relation]
                if atom.arity != relation.arity:
                    raise ArityError(atom.relation, relation.arity, atom.arity)
        if rule.source == self.name:
            for atom in rule.mapping.body:
                relation = schema[atom.relation]
                if atom.arity != relation.arity:
                    raise ArityError(atom.relation, relation.arity, atom.arity)
                if not relation.exported:
                    raise RuleError(
                        f"rule {rule.rule_id!r} reads {atom.relation!r}, "
                        f"which {self.name!r} does not export"
                    )

    def _on_rules_file(self, message: Message) -> None:
        rule_file = RuleFile.from_payload(message.payload)
        self.set_rules(rule_file.rules)

    # ------------------------------------------------------------------
    # Statistics service (§4)
    # ------------------------------------------------------------------

    def _on_stats_request(self, message: Message) -> None:
        reports = [
            report.to_payload() for report in self.stats.reports.values()
        ]
        self.endpoint.send(
            message.sender,
            "stats_response",
            {
                "node": self.name,
                "collection_id": message.payload.get("collection_id", ""),
                "reports": reports,
                "queries_answered": self.stats.queries_answered,
                "cache": self.cache_counters(),
            },
        )

    # ------------------------------------------------------------------
    # Local data management
    # ------------------------------------------------------------------

    def load_facts(self, facts: str | dict[str, list[Sequence[Value]]]) -> int:
        """Bulk-load ground facts, given as text or ``{relation: rows}``."""
        if isinstance(facts, str):
            facts = parse_facts(facts)
        with self._lock:
            loaded = self.wrapper.load({k: list(v) for k, v in facts.items()})
            if loaded:
                self.bump_epochs(facts)
            return loaded

    def insert(self, relation: str, row: Sequence[Value]) -> bool:
        """Insert one local row; pushes the delta downstream when the
        node runs in continuous mode (``config.push_on_insert``)."""
        with self._lock:
            new_rows = self.wrapper.insert_new(relation, [row])
            if new_rows:
                self.bump_epochs([relation])
                if self.config.push_on_insert:
                    self.push.push_deltas({relation: new_rows})
            return bool(new_rows)

    def push_deltas(self, deltas: dict[str, list]) -> int:
        """Explicitly push ``{relation: rows}`` along incoming links."""
        with self._lock:
            # The deltas describe rows already in the store (callers
            # insert first); bump anyway — an extra epoch advance is
            # harmless, a missed one would serve a stale cached answer.
            self.bump_epochs(deltas)
            return self.push.push_deltas(
                {rel: [tuple(r) for r in rows] for rel, rows in deltas.items()}
            )

    def rows(self, relation: str) -> list[Row]:
        with self._lock:
            return self.wrapper.rows(relation)

    def snapshot(self) -> dict[str, list[Row]]:
        with self._lock:
            return self.wrapper.snapshot()

    @property
    def database(self) -> Database | None:
        """The underlying in-memory database, when the store has one."""
        return getattr(self.wrapper, "database", None)

    # ------------------------------------------------------------------
    # Queries (the §2 UI: "users can commence network queries")
    # ------------------------------------------------------------------

    def query(
        self,
        query: str | ConjunctiveQuery,
        *,
        certain: bool = False,
        cache: bool | None = None,
    ) -> list[Row]:
        """Answer *query* from local data only.

        With ``certain=True``, answers containing marked nulls are
        dropped: for positive conjunctive queries over naive tables,
        the null-free answers are exactly the *certain answers* (true
        in every completion of the incomplete database).

        ``cache`` overrides ``config.answer_cache`` per call: local
        answers are served from the epoch-keyed cache while every body
        relation's epoch is unchanged (any local write, taught row or
        received invalidation bumps them).
        """
        if isinstance(query, str):
            query = parse_query(query)
        query.validate_against(self.wrapper.schema)
        use_cache = self.config.answer_cache if cache is None else cache
        with self._lock:
            answers = None
            fingerprint = f"local:{query!r}"
            if use_cache:
                answers = self.cache.get(fingerprint)
            if answers is None:
                answers = self.wrapper.evaluate_query(query)
                if use_cache:
                    self.cache.put(
                        fingerprint, query.body_relations(), answers
                    )
        if certain:
            from repro.relational.values import MarkedNull

            answers = [
                row
                for row in answers
                if not any(isinstance(v, MarkedNull) for v in row)
            ]
        return answers

    def submit_query_id(
        self,
        query: str | ConjunctiveQuery,
        *,
        persist: bool = True,
        cache: bool | None = None,
        tenant: str = "",
    ) -> str:
        """Submit a network query through the session registry and
        admission queue; returns the bare query id (the handle-free
        entry point the network layer and id-oriented callers use).

        ``cache`` overrides ``config.answer_cache`` per call; a cache
        hit completes the session immediately without propagating.
        *tenant* tags the submission in this node's statistics (the
        service gateway's per-tenant accounting)."""
        if isinstance(query, str):
            query = parse_query(query)
        with self._lock:
            self.stats.note_tenant_submission(tenant, "query")
            return self.queries.submit(query, persist=persist, cache=cache)

    def submit_network_query(
        self,
        query: str | ConjunctiveQuery,
        *,
        persist: bool = True,
        cache: bool | None = None,
    ) -> RequestHandle:
        """Pose a network query as a session; returns its handle.

        ``handle.result()`` drives the transport and returns the
        answer rows once the diffusing computation quiesces.
        """
        transport = self.endpoint.transport
        started_at = transport.now()
        messages_before = transport.stats.messages_sent
        bytes_before = transport.stats.bytes_sent
        query_id = self.submit_query_id(query, persist=persist, cache=cache)
        handle = RequestHandle(
            request_id=query_id,
            kind="query",
            origin=self.name,
            transport=transport,
            is_done=lambda: self.queries.is_done(query_id),
            assemble=lambda _handle: self.queries.answer(query_id),
            try_cancel=lambda: self.cancel_query(query_id),
            started_at=started_at,
            messages_before=messages_before,
            bytes_before=bytes_before,
        )
        self._register_handle(handle)
        return handle

    def start_network_query(
        self, query: str | ConjunctiveQuery, *, persist: bool = True
    ) -> str:
        """Pose a network query; returns the query id (poll via
        :meth:`network_query_answer`).  Thin wrapper over
        :meth:`submit_query_id`."""
        return self.submit_query_id(query, persist=persist)

    def network_query_answer(self, query_id: str) -> list[Row] | None:
        with self._lock:
            return self.queries.answer(query_id)

    def cancel_query(self, query_id: str) -> bool:
        """Withdraw a query still queued behind admission."""
        with self._lock:
            return self.queries.cancel(query_id)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def submit_update_id(self, *, tenant: str = "") -> str:
        """Submit a global update through the session registry and
        admission queue; returns the bare update id (the handle-free
        entry point the network layer and id-oriented callers use).
        *tenant* tags the submission in this node's statistics (the
        service gateway's per-tenant accounting)."""
        with self._lock:
            self.stats.note_tenant_submission(tenant, "update")
            return self.updates.submit()

    def submit_global_update(self) -> RequestHandle:
        """Begin a global update with this node as origin; returns its
        handle.

        Any number of global updates — from this origin or others —
        may be in flight concurrently; each runs as its own session
        (bounded by ``config.max_active_sessions`` when set).  The
        node-level handle completes when the update completes *at this
        node* (which, at the origin, is global quiescence), and its
        ``result()`` is this node's own
        :class:`~repro.core.statistics.UpdateReport`; the network-level
        ``CoDBNetwork.submit_global_update`` offers the aggregated
        outcome instead.
        """
        transport = self.endpoint.transport
        started_at = transport.now()
        messages_before = transport.stats.messages_sent
        bytes_before = transport.stats.bytes_sent
        update_id = self.submit_update_id()
        handle = RequestHandle(
            request_id=update_id,
            kind="update",
            origin=self.name,
            transport=transport,
            is_done=lambda: self.updates.is_done(update_id),
            assemble=lambda _handle: self.stats.report_for(update_id),
            try_cancel=lambda: self.cancel_update(update_id),
            started_at=started_at,
            messages_before=messages_before,
            bytes_before=bytes_before,
        )
        self._register_handle(handle)
        return handle

    def start_global_update(self) -> str:
        """Begin a global update here; returns its id.  Thin wrapper
        over :meth:`submit_update_id`, so direct node-API callers go
        through the same session registry, admission queue and
        statistics as handle holders."""
        return self.submit_update_id()

    def cancel_update(self, update_id: str) -> bool:
        """Withdraw an update still queued behind admission."""
        with self._lock:
            return self.updates.cancel(update_id)

    def update_done(self, update_id: str) -> bool:
        return self.updates.is_done(update_id)

    def update_report(self, update_id: str) -> UpdateReport | None:
        """The per-node global update processing report (§4)."""
        return self.stats.report_for(update_id)

    # ------------------------------------------------------------------
    # Crash-and-rejoin lifecycle
    # ------------------------------------------------------------------

    def _rejoin_digests(self) -> dict[str, list[int]]:
        """Per-outgoing-link fingerprints of the lifetime ``fired``
        memory, keyed by rule id — what the rejoin handshake ships so
        the exporter on the other side can decide whether its
        ``pushed`` dedup still matches what this importer remembers."""
        return {
            rule_id: list(memory_digest(link.fired))
            for rule_id, link in self.links.outgoing.items()
        }

    def rejoin(self) -> None:
        """Re-enter the network after a crash or departure.

        The node re-registers on the transport, conservatively resets
        everything reachability-sensitive (answer cache floods, interest
        registrations drop on both sides — exactly the partition-heal
        fallbacks), then announces itself to every acquaintance with a
        ``rejoin`` handshake carrying its lifetime-memory digests and
        epoch vector.  Each survivor resynchronises its send-dedup
        against the digests (see :meth:`_on_rejoin`) and answers with
        its own, so both directions of every shared rule end
        consistent.  Finally the admission queue is re-armed so work
        deferred during the outage drains.

        The restored ``fired`` memory is *never* cleared: it is what
        keeps re-shipped rows from re-minting nulls.  A stale ``pushed``
        memory only ever causes over-resending, which ``fired`` absorbs.
        """
        with self._lock:
            self.detached = False
            # Every acquaintance gets a fresh chance; a genuinely dead
            # peer will bounce again and be re-recorded.
            self._down_peers.clear()
            self.cache.bump_all()
            for link in self.links.outgoing.values():
                link.registered = False
            for link in self.links.incoming.values():
                link.cache_interest = False
                link.notified.clear()
            peers = self.links.acquaintances()
            payload = {
                "digests": self._rejoin_digests(),
                "epochs": dict(self.cache.epochs),
                "ack": False,
            }
        self.endpoint.reattach()
        for peer in peers:
            self.endpoint.try_send(peer, "rejoin", payload)
        with self._lock:
            self.admission.drain()

    def _on_rejoin(self, message: Message) -> None:
        """A peer re-entered the network (or acked our own rejoin).

        Symmetric resync: treat the peer as freshly reachable (flood
        the cache, reset interest both ways — it may have missed
        invalidations while gone), then compare each incoming link's
        lifetime ``pushed`` memory against the digest of the peer's
        restored ``fired`` memory for the same rule.  A match means the
        peer missed nothing this side's dedup would suppress — the
        warm-rejoin fast path.  Any mismatch clears ``pushed`` so the
        next update re-ships everything; the peer's ``fired`` set makes
        over-shipping harmless, while under-shipping would lose data.
        """
        peer = message.sender
        payload = message.payload
        self._down_peers.discard(peer)
        self.cache.bump_all()
        for link in self.links.outgoing.values():
            if link.remote == peer:
                link.registered = False
        digests = payload.get("digests", {})
        for link in self.links.incoming.values():
            if link.remote != peer:
                continue
            link.cache_interest = False
            link.notified.clear()
            link.lease_remaining = 0
            theirs = digests.get(link.rule_id)
            if theirs is None or tuple(theirs) != memory_digest(link.pushed):
                link.pushed.clear()
        self.admission.drain()
        if not payload.get("ack"):
            self.endpoint.try_send(
                peer,
                "rejoin",
                {
                    "digests": self._rejoin_digests(),
                    "epochs": dict(self.cache.epochs),
                    "ack": True,
                },
            )

    # ------------------------------------------------------------------

    def detach(self) -> None:
        """Crash-leave the network: no goodbyes, mail bounces.

        In-flight protocol messages addressed here are returned to
        their senders as ``undeliverable`` (simulated transport), which
        drains their termination deficits and closes their links toward
        this node — ongoing updates still terminate (§1's dynamic-
        network claim).
        """
        with self._lock:
            self.detached = True
        self.endpoint.detach()

    def leave_network(self) -> None:
        """Graceful leave: release engaged computations, then detach.

        Deferred parent acknowledgements are sent first so that any
        diffusing computation this node is part of can collapse without
        waiting for bounces.
        """
        with self._lock:
            self.detached = True
            self.termination.abandon_all()
        self.endpoint.detach()

    def __repr__(self) -> str:
        return (
            f"<CoDBNode {self.name} relations={self.wrapper.schema.relation_names} "
            f"out={len(self.links.outgoing)} in={len(self.links.incoming)}>"
        )
