"""Topology discovery.

"In addition to global updates handling and query answering at a node,
coDB supports a topology discovery algorithm" (§3), and the UI shows
"the other nodes it has pipes with, and w.r.t. which nodes it has
incoming and outgoing links" (§4).

Protocol: the initiator floods ``topology_request`` over pipes (dedup
by discovery id); every reached node replies *directly* to the
initiator with its local view — pipe neighbours plus its incoming and
outgoing rule edges.  The initiator aggregates replies into a
:class:`TopologyView`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.p2p.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import CoDBNode


@dataclass
class TopologyView:
    """Aggregated picture of the network, as one node discovered it."""

    discovery_id: str
    initiator: str
    #: Node name -> pipe neighbours.
    pipes: dict[str, list[str]] = field(default_factory=dict)
    #: Rule edges (rule_id, source, target) — data flows source→target.
    rule_edges: list[tuple[str, str, str]] = field(default_factory=list)

    def nodes(self) -> list[str]:
        names: dict[str, None] = {}
        for node, neighbours in self.pipes.items():
            names.setdefault(node)
            for neighbour in neighbours:
                names.setdefault(neighbour)
        for _, source, target in self.rule_edges:
            names.setdefault(source)
            names.setdefault(target)
        return sorted(names)

    def edge_count(self) -> int:
        return len(self.rule_edges)

    def to_networkx(self):
        """The rule-edge digraph as a :mod:`networkx` ``DiGraph``.

        Node analysis scripts (and the workloads package) use networkx;
        the core protocol never does.
        """
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes())
        for rule_id, source, target in self.rule_edges:
            graph.add_edge(source, target, rule_id=rule_id)
        return graph


class TopologyDiscovery:
    """Topology discovery protocol state for one node."""

    def __init__(self, node: "CoDBNode") -> None:
        self.node = node
        self.views: dict[str, TopologyView] = {}
        self._seen: set[str] = set()
        node.endpoint.on("topology_request", self._on_request)
        node.endpoint.on("topology_response", self._on_response)

    def start(self) -> str:
        """Begin discovery; returns the discovery id.  Drive the
        transport, then read :meth:`view`."""
        node = self.node
        discovery_id = node.endpoint.ids.message_id()
        self._seen.add(discovery_id)
        self.views[discovery_id] = TopologyView(
            discovery_id=discovery_id, initiator=node.name
        )
        self._absorb(discovery_id, self._local_view())
        for remote in node.pipes.remotes():
            node.pipes.pipe_to(remote).send(
                "topology_request",
                {"discovery_id": discovery_id, "initiator": node.name},
            )
        return discovery_id

    def view(self, discovery_id: str) -> TopologyView:
        return self.views[discovery_id]

    # ------------------------------------------------------------------

    def _local_view(self) -> dict[str, Any]:
        node = self.node
        return {
            "node": node.name,
            "pipes": node.pipes.remotes(),
            "outgoing": [
                [link.rule_id, link.remote, node.name]
                for link in node.links.outgoing.values()
            ],
            "incoming": [
                [link.rule_id, node.name, link.remote]
                for link in node.links.incoming.values()
            ],
        }

    def _on_request(self, message: Message) -> None:
        discovery_id = message.payload["discovery_id"]
        if discovery_id in self._seen:
            return
        self._seen.add(discovery_id)
        initiator = message.payload["initiator"]
        self.node.endpoint.send(
            initiator, "topology_response",
            {"discovery_id": discovery_id, **self._local_view()},
        )
        for remote in self.node.pipes.remotes():
            if remote != message.sender:
                self.node.pipes.pipe_to(remote).send(
                    "topology_request",
                    {"discovery_id": discovery_id, "initiator": initiator},
                )

    def _on_response(self, message: Message) -> None:
        discovery_id = message.payload["discovery_id"]
        if discovery_id in self.views:
            self._absorb(discovery_id, message.payload)

    def _absorb(self, discovery_id: str, payload: dict[str, Any]) -> None:
        view = self.views[discovery_id]
        view.pipes[payload["node"]] = list(payload["pipes"])
        for rule_id, source, target in payload["outgoing"]:
            edge = (str(rule_id), str(source), str(target))
            if edge not in view.rule_edges:
                view.rule_edges.append(edge)
        for rule_id, source, target in payload["incoming"]:
            edge = (str(rule_id), str(source), str(target))
            if edge not in view.rule_edges:
                view.rule_edges.append(edge)
