"""Link state: the paper's incoming/outgoing links and their dependency.

§3: "We call coordination rules *incoming links* at some node, if
these rules are used by some other (acquainted) nodes for importing
data from that given node.  We call coordination rules *outgoing
links* at some node, if that node uses these rules in order to import
data from its acquaintances.  We say that an incoming link is
*dependent on* an outgoing link ... if the head of the outgoing link
reference[s] a relation, which is referenced by a body subgoal of the
incoming link."

Note the perspective: one :class:`CoordinationRule` is an *outgoing*
link at its target (importer) and an *incoming* link at its source.
Link state is per global update; the structures here also carry the
bookkeeping sets of §3 — what has been sent on an incoming link, what
has been received on an outgoing link.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rules import CoordinationRule
from repro.relational.values import Row

#: Link state machine: INACTIVE -(update request)-> OPEN -(closure)-> CLOSED.
INACTIVE = "inactive"
OPEN = "open"
CLOSED = "closed"


@dataclass
class OutgoingLink:
    """A rule this node uses to import data (node == rule.target)."""

    rule: CoordinationRule

    #: Frontier rows ever received over this link.  This is the
    #: link's *lifetime* memory, not per-update state: a frontier row
    #: fires the rule (and mints its null vector, if any) exactly once
    #: over the rule's lifetime, which is what makes repeated global
    #: updates idempotent — the paper's "remove from T those tuples
    #: which are already in R", lifted to frontier granularity so it
    #: also works for heads with existential variables.
    received: set[Row] = field(default_factory=set)
    state: str = INACTIVE
    #: How the link closed: "cascade" (paper condition a: every
    #: relevant chain below quiesced and told us) or "quiescence"
    #: (condition b around cycles: global quiescence detection).
    closed_by: str = ""
    #: Longest update-propagation path observed on this link.
    longest_path: int = 0

    @property
    def rule_id(self) -> str:
        return self.rule.rule_id

    @property
    def remote(self) -> str:
        """The acquaintance that evaluates the body (rule.source)."""
        return self.rule.source

    def reset_for_update(self) -> None:
        """Per-update reset: states only; the received-set persists."""
        self.state = INACTIVE
        self.closed_by = ""
        self.longest_path = 0


@dataclass
class IncomingLink:
    """A rule some acquaintance uses to import data from this node
    (node == rule.source)."""

    rule: CoordinationRule

    #: Frontier rows ever sent over this link — "we delete from Ri
    #: those tuples which have been already sent to the incoming link"
    #: (§3).  Lifetime memory, like the outgoing side's received-set:
    #: a second global update re-ships nothing the importer already
    #: has, so repeated updates converge instead of re-minting nulls.
    sent: set[Row] = field(default_factory=set)
    state: str = INACTIVE
    closed_by: str = ""
    #: Outgoing-link rule ids of this node that this link depends on.
    relevant_outgoing: tuple[str, ...] = ()

    @property
    def rule_id(self) -> str:
        return self.rule.rule_id

    @property
    def remote(self) -> str:
        """The importer the results flow to (rule.target)."""
        return self.rule.target

    def reset_for_update(self) -> None:
        """Per-update reset: states only; the sent-set persists."""
        self.state = INACTIVE
        self.closed_by = ""


class LinkTable:
    """All links of one node, with the dependency relation precomputed."""

    def __init__(self, node_name: str, rules: list[CoordinationRule]) -> None:
        self.node_name = node_name
        self.outgoing: dict[str, OutgoingLink] = {}
        self.incoming: dict[str, IncomingLink] = {}
        for rule in rules:
            if rule.target == node_name:
                self.outgoing[rule.rule_id] = OutgoingLink(rule)
            if rule.source == node_name:
                self.incoming[rule.rule_id] = IncomingLink(rule)
        self._compute_dependencies()

    def _compute_dependencies(self) -> None:
        """Incoming link I depends on outgoing link O iff O's head
        writes a relation read by I's body (both at this node)."""
        for incoming in self.incoming.values():
            body_relations = set(incoming.rule.mapping.body_relations())
            relevant = [
                outgoing.rule_id
                for outgoing in self.outgoing.values()
                if body_relations & set(outgoing.rule.mapping.head_relations())
            ]
            incoming.relevant_outgoing = tuple(relevant)

    # -- views --------------------------------------------------------------

    def acquaintances(self) -> list[str]:
        """Every peer this node needs a pipe with, deterministic order."""
        remotes: dict[str, None] = {}
        for link in self.outgoing.values():
            remotes.setdefault(link.remote)
        for link in self.incoming.values():
            remotes.setdefault(link.remote)
        return list(remotes)

    def incoming_for_target(self, target: str) -> list[IncomingLink]:
        """The incoming links serving one importer."""
        return [l for l in self.incoming.values() if l.remote == target]

    def incoming_dependent_on_relations(
        self, relations: set[str]
    ) -> list[IncomingLink]:
        """Incoming links whose body reads any of *relations*."""
        return [
            link
            for link in self.incoming.values()
            if relations & set(link.rule.mapping.body_relations())
        ]

    def outgoing_writing_relations(self) -> dict[str, tuple[str, ...]]:
        """rule_id -> head relations, for delta attribution."""
        return {
            rule_id: link.rule.mapping.head_relations()
            for rule_id, link in self.outgoing.items()
        }

    def all_outgoing_closed(self) -> bool:
        """The node-closure condition: "when all outgoing links of a
        node are in the state 'closed', then the node is also in the
        state 'closed'" (§3).  Vacuously true with no outgoing links."""
        return all(link.state == CLOSED for link in self.outgoing.values())

    def incoming_ready_to_close(self) -> list[IncomingLink]:
        """Open incoming links whose relevant outgoing links are all
        closed — the closure-cascade condition of §3."""
        ready = []
        for link in self.incoming.values():
            if link.state != OPEN:
                continue
            if all(
                self.outgoing[rule_id].state == CLOSED
                for rule_id in link.relevant_outgoing
            ):
                ready.append(link)
        return ready

    def reset_for_update(self) -> None:
        """Open a new update: reset link states, keep lifetime dedup sets."""
        for link in self.outgoing.values():
            link.reset_for_update()
        for link in self.incoming.values():
            link.reset_for_update()

    def __repr__(self) -> str:
        return (
            f"<LinkTable {self.node_name}: out={sorted(self.outgoing)} "
            f"in={sorted(self.incoming)}>"
        )
