"""Link state: the paper's incoming/outgoing links and their dependency.

§3: "We call coordination rules *incoming links* at some node, if
these rules are used by some other (acquainted) nodes for importing
data from that given node.  We call coordination rules *outgoing
links* at some node, if that node uses these rules in order to import
data from its acquaintances.  We say that an incoming link is
*dependent on* an outgoing link ... if the head of the outgoing link
reference[s] a relation, which is referenced by a body subgoal of the
incoming link."

Note the perspective: one :class:`CoordinationRule` is an *outgoing*
link at its target (importer) and an *incoming* link at its source.

Two layers of state, split since the DBM became multi-session:

* **Shared (node-global)** — the link *topology* (:class:`LinkTable`,
  :class:`OutgoingLink`, :class:`IncomingLink`) plus each link's
  *lifetime* memory: the outgoing side's ``fired`` set (frontier rows
  that ever instantiated the rule head here — what makes null minting
  idempotent across updates *and* across concurrent sessions) and the
  incoming side's ``pushed`` set (continuous-mode dedup).
* **Per update session** — activation state, closure cause, and the
  protocol's sent/received dedup sets (:class:`SessionLinkState`,
  grouped per update in a :class:`LinkSession`).  Every concurrent
  global update gets its own independent copy, so interleaved updates
  cannot close each other's links or starve each other's semi-naive
  dedup.

The shared link objects also carry mirror ``state``/``closed_by``
fields stamped by whichever session last changed them — diagnostics
and single-update tests read those; the per-session state is the
authoritative one.

All row-membership sets here hold *row keys*
(:func:`repro.relational.values.row_key`) rather than raw rows, so set
membership uses the engine's type-strict value identity.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.core.rules import CoordinationRule
from repro.relational.values import Row, row_key

#: Link state machine: INACTIVE -(update request)-> OPEN -(closure)-> CLOSED.
INACTIVE = "inactive"
OPEN = "open"
CLOSED = "closed"


def memory_digest(keys: set) -> tuple[int, int]:
    """Order-independent fingerprint of a lifetime row-key set.

    ``(cardinality, crc32 over the sorted key reprs)`` — cheap to
    compute, cheap to ship, and deterministic across processes (reprs,
    not ``hash()``, which PYTHONHASHSEED randomizes).  The rejoin
    handshake compares the rejoiner's restored ``fired`` memory against
    the surviving exporter's ``pushed`` memory per link: in steady
    state the two sides record the same row flow, so equal digests mean
    the rejoiner missed nothing and the exporter's send-dedup can stand;
    any mismatch clears it so the next update conservatively re-ships
    (the importer's ``fired`` set makes over-shipping harmless).
    """
    crc = 0
    for text in sorted(repr(key) for key in keys):
        crc = zlib.crc32(text.encode("utf-8"), crc)
    return (len(keys), crc)


@dataclass
class OutgoingLink:
    """A rule this node uses to import data (node == rule.target)."""

    rule: CoordinationRule

    #: Row keys of frontier rows that ever *fired* this rule here —
    #: instantiated the head, minting the null vector for existential
    #: head variables.  This is the link's **lifetime** memory, shared
    #: by every update session and by the push engine: a frontier row
    #: fires the rule exactly once over the rule's lifetime, which is
    #: what keeps repeated global updates idempotent ("remove from T
    #: those tuples which are already in R", lifted to frontier
    #: granularity) and keeps N concurrent sessions delivering the same
    #: row from re-minting nulls.
    fired: set = field(default_factory=set)
    #: Whether this node has registered CUP-style invalidation interest
    #: upstream on this link (it cached an answer depending on the
    #: rule's head relations).  Cleared when an ``invalidation``
    #: arrives through the link — the next cache fill re-registers,
    #: re-arming the upstream side's notification dedup.
    registered: bool = False
    #: Diagnostic mirror of the most recent session's activation state.
    state: str = INACTIVE
    #: How the mirror closed: "cascade" (paper condition a), "quiescence"
    #: (condition b around cycles) or "failure" (peer churn).
    closed_by: str = ""
    #: Longest update-propagation path observed on this link (mirror).
    longest_path: int = 0

    @property
    def rule_id(self) -> str:
        return self.rule.rule_id

    @property
    def remote(self) -> str:
        """The acquaintance that evaluates the body (rule.source)."""
        return self.rule.source

    def has_fired(self, row: Row) -> bool:
        return row_key(row) in self.fired

    def mark_fired(self, row: Row) -> None:
        self.fired.add(row_key(row))


@dataclass
class IncomingLink:
    """A rule some acquaintance uses to import data from this node
    (node == rule.source)."""

    rule: CoordinationRule

    #: Row keys this node ever *delivered* over this link: shipped by
    #: the push engine (continuous mode) or taught forward by an update
    #: session under resend suppression.  The link's lifetime sent
    #: memory, mirroring §3's "delete from Ri those tuples which have
    #: been already sent" across updates — the importer's lifetime
    #: ``fired`` set would drop a re-shipped row anyway, so a later
    #: session skips it at the source (rows taught by a session that
    #: ends in failure are rolled back; see
    #: :meth:`LinkSession.close_incoming`).
    pushed: set = field(default_factory=set)
    #: Whether the importer registered CUP-style invalidation interest:
    #: it serves cached answers derived through this link and wants a
    #: compact ``invalidation`` instead of eager continuous-mode row
    #: pushes (it pulls on a cache miss).  Conservatively reset to
    #: ``False`` — flood — on failure closes and ``peer_down``.
    cache_interest: bool = False
    #: Head relations (importer-side) already invalidated since the
    #: last registration.  One notification per relation per
    #: registration round is enough — the importer is stale either way
    #: until it refreshes and re-registers — and the dedup is what
    #: terminates invalidation cascades around rule cycles.
    notified: set = field(default_factory=set)
    #: Remaining suppression budget of the importer's registration
    #: (interest lease).  Each registration arrives with an event-count
    #: lease; every event this side *suppresses* on the importer's
    #: behalf (a notified-deduped write, a withheld continuous push)
    #: spends one unit.  At zero the lease expires: interest is
    #: dropped, a final unconditional ``invalidation`` tells the
    #: importer, and pushes flow again — an idle cached reader cannot
    #: suppress upstream propagation forever.  ``0`` = no lease
    #: (infinite, the pre-lease behaviour).
    lease_remaining: int = 0
    #: Diagnostic mirrors (most recent session, see module docstring).
    state: str = INACTIVE
    closed_by: str = ""
    #: Outgoing-link rule ids of this node that this link depends on.
    relevant_outgoing: tuple[str, ...] = ()

    @property
    def rule_id(self) -> str:
        return self.rule.rule_id

    @property
    def remote(self) -> str:
        """The importer the results flow to (rule.target)."""
        return self.rule.target

    def has_pushed(self, row: Row) -> bool:
        return row_key(row) in self.pushed

    def mark_pushed(self, row: Row) -> None:
        self.pushed.add(row_key(row))


class LinkTable:
    """All links of one node, with the dependency relation precomputed."""

    def __init__(self, node_name: str, rules: list[CoordinationRule]) -> None:
        self.node_name = node_name
        self.outgoing: dict[str, OutgoingLink] = {}
        self.incoming: dict[str, IncomingLink] = {}
        for rule in rules:
            if rule.target == node_name:
                self.outgoing[rule.rule_id] = OutgoingLink(rule)
            if rule.source == node_name:
                self.incoming[rule.rule_id] = IncomingLink(rule)
        self._compute_dependencies()

    def _compute_dependencies(self) -> None:
        """Incoming link I depends on outgoing link O iff O's head
        writes a relation read by I's body (both at this node)."""
        for incoming in self.incoming.values():
            body_relations = set(incoming.rule.mapping.body_relations())
            relevant = [
                outgoing.rule_id
                for outgoing in self.outgoing.values()
                if body_relations & set(outgoing.rule.mapping.head_relations())
            ]
            incoming.relevant_outgoing = tuple(relevant)

    # -- views --------------------------------------------------------------

    def acquaintances(self) -> list[str]:
        """Every peer this node needs a pipe with, deterministic order."""
        remotes: dict[str, None] = {}
        for link in self.outgoing.values():
            remotes.setdefault(link.remote)
        for link in self.incoming.values():
            remotes.setdefault(link.remote)
        return list(remotes)

    def incoming_for_target(self, target: str) -> list[IncomingLink]:
        """The incoming links serving one importer."""
        return [l for l in self.incoming.values() if l.remote == target]

    def incoming_dependent_on_relations(
        self, relations: set[str]
    ) -> list[IncomingLink]:
        """Incoming links whose body reads any of *relations*."""
        return [
            link
            for link in self.incoming.values()
            if relations & set(link.rule.mapping.body_relations())
        ]

    def outgoing_writing_relations(self) -> dict[str, tuple[str, ...]]:
        """rule_id -> head relations, for delta attribution."""
        return {
            rule_id: link.rule.mapping.head_relations()
            for rule_id, link in self.outgoing.items()
        }

    def __repr__(self) -> str:
        return (
            f"<LinkTable {self.node_name}: out={sorted(self.outgoing)} "
            f"in={sorted(self.incoming)}>"
        )


@dataclass
class SessionLinkState:
    """One update session's volatile state for one link.

    ``seen`` is the §3 dedup set at frontier-row granularity, held as
    row keys: *received* rows on an outgoing link ("we first remove
    from T those tuples which are already in R"), *sent* rows on an
    incoming link ("we delete from Ri those tuples which have been
    already sent").  Each concurrent update owns an independent set, so
    one session's traffic never starves another's — a session always
    re-derives and re-ships everything its own data flow produces.
    """

    state: str = INACTIVE
    closed_by: str = ""
    longest_path: int = 0
    seen: set = field(default_factory=set)
    #: Row keys THIS session newly added to the shared link's lifetime
    #: ``pushed`` memory (resend suppression).  Kept separately so a
    #: failure closure can forget exactly what this session taught:
    #: its messages may never have arrived, and a healed network's
    #: next update must re-ship them (over-resending is safe — the
    #: importer's ``fired`` set dedups; under-resending loses data).
    lifetime_new: set = field(default_factory=set)

    def has_seen(self, row: Row) -> bool:
        return row_key(row) in self.seen

    def mark_seen(self, row: Row) -> None:
        self.seen.add(row_key(row))


class LinkSession:
    """Per-update view over a node's :class:`LinkTable`.

    Topology (which links exist, who they serve, the dependency
    relation) is read through the bound table; activation state and
    dedup sets live here, one :class:`SessionLinkState` per rule id,
    created lazily.  ``rebind`` follows a runtime rules change (§4):
    states for rules that survived are kept, new rules start INACTIVE.
    """

    def __init__(self, table: LinkTable) -> None:
        self.table = table
        self._outgoing: dict[str, SessionLinkState] = {}
        self._incoming: dict[str, SessionLinkState] = {}

    def rebind(self, table: LinkTable) -> None:
        self.table = table

    # -- state access -------------------------------------------------------

    def outgoing_state(self, rule_id: str) -> SessionLinkState:
        state = self._outgoing.get(rule_id)
        if state is None:
            state = self._outgoing[rule_id] = SessionLinkState()
        return state

    def incoming_state(self, rule_id: str) -> SessionLinkState:
        state = self._incoming.get(rule_id)
        if state is None:
            state = self._incoming[rule_id] = SessionLinkState()
        return state

    def open_all_outgoing(self) -> None:
        """Session start: every outgoing link participates."""
        for rule_id, link in self.table.outgoing.items():
            state = self.outgoing_state(rule_id)
            state.state = OPEN
            link.state = OPEN
            link.closed_by = ""

    def close_outgoing(self, rule_id: str, closed_by: str) -> None:
        state = self.outgoing_state(rule_id)
        state.state = CLOSED
        state.closed_by = closed_by
        link = self.table.outgoing.get(rule_id)
        if link is not None:  # mirror for diagnostics / single-update tests
            link.state = CLOSED
            link.closed_by = closed_by

    def close_incoming(self, rule_id: str, closed_by: str) -> None:
        state = self.incoming_state(rule_id)
        state.state = CLOSED
        state.closed_by = closed_by
        link = self.table.incoming.get(rule_id)
        if link is not None:
            link.state = CLOSED
            link.closed_by = closed_by
            if closed_by == "failure":
                self.rollback_taught(rule_id)
                # Conservative cache fallback: the importer may have
                # missed invalidations in flight — drop its registration
                # so the next change floods rows instead of a notice.
                link.cache_interest = False
                link.notified.clear()

    def rollback_taught(self, rule_id: str) -> None:
        """This session's shipments toward the importer may never have
        arrived: forget what it taught the lifetime sent memory so the
        next update re-ships.  Called on failure closes, and again when
        a shipment bounces *after* the link already closed cleanly —
        the importer's ``fired`` set makes the re-send harmless."""
        state = self.incoming_state(rule_id)
        link = self.table.incoming.get(rule_id)
        if link is not None and state.lifetime_new:
            link.pushed -= state.lifetime_new
            state.lifetime_new.clear()

    # -- paired topology/state views ----------------------------------------

    def outgoing_items(self) -> list[tuple[OutgoingLink, SessionLinkState]]:
        return [
            (link, self.outgoing_state(rule_id))
            for rule_id, link in self.table.outgoing.items()
        ]

    def incoming_items(self) -> list[tuple[IncomingLink, SessionLinkState]]:
        return [
            (link, self.incoming_state(rule_id))
            for rule_id, link in self.table.incoming.items()
        ]

    def incoming_for_target(
        self, target: str
    ) -> list[tuple[IncomingLink, SessionLinkState]]:
        return [
            (link, self.incoming_state(link.rule_id))
            for link in self.table.incoming_for_target(target)
        ]

    def incoming_dependent_on_relations(
        self, relations: set[str]
    ) -> list[tuple[IncomingLink, SessionLinkState]]:
        return [
            (link, self.incoming_state(link.rule_id))
            for link in self.table.incoming_dependent_on_relations(relations)
        ]

    # -- closure conditions --------------------------------------------------

    def all_outgoing_closed(self) -> bool:
        """The node-closure condition: "when all outgoing links of a
        node are in the state 'closed', then the node is also in the
        state 'closed'" (§3).  Vacuously true with no outgoing links."""
        return all(
            self.outgoing_state(rule_id).state == CLOSED
            for rule_id in self.table.outgoing
        )

    def all_incoming_closed(self) -> bool:
        return all(
            self.incoming_state(rule_id).state == CLOSED
            for rule_id in self.table.incoming
        )

    def incoming_ready_to_close(
        self,
    ) -> list[tuple[IncomingLink, SessionLinkState]]:
        """Open incoming links whose relevant outgoing links are all
        closed — the closure-cascade condition of §3, evaluated against
        *this session's* states only."""
        ready = []
        for link in self.table.incoming.values():
            state = self.incoming_state(link.rule_id)
            if state.state != OPEN:
                continue
            if all(
                self.outgoing_state(rule_id).state == CLOSED
                for rule_id in link.relevant_outgoing
            ):
                ready.append((link, state))
        return ready

    def __repr__(self) -> str:
        return (
            f"<LinkSession over {self.table.node_name}: "
            f"out={{{', '.join(f'{r}:{s.state}' for r, s in self._outgoing.items())}}} "
            f"in={{{', '.join(f'{r}:{s.state}' for r, s in self._incoming.items())}}}>"
        )
