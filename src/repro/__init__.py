"""coDB — a reproduction of the VLDB 2004 peer-to-peer database system.

"Queries and Updates in the coDB Peer to Peer Database System",
Franconi, Kuper, Lopatenko, Zaihrayeu (VLDB'04; technical report
DIT-04-088).

A network of databases, possibly with different schemas, are
interconnected by means of GLAV coordination rules — inclusions of
conjunctive queries, with possibly existential variables in the head;
coordination rules may be cyclic.  Each node can be queried in its
schema for data, which the node can fetch from its neighbours
(query-time answering), or the whole network can run a *global update*
that materialises all derivable data so later queries are purely
local.

Quickstart — every request is a session with a handle::

    from repro import CoDBNetwork, as_completed

    net = CoDBNetwork(seed=7)
    net.add_node("BZ", "person(name: str, city: str)",
                 facts="person('anna', 'Trento'). person('bob', 'Bolzano')")
    net.add_node("TN", "resident(name: str)")
    net.add_rule("TN:resident(n) <- BZ:person(n, c), c = 'Trento'")
    net.start()

    # Submit, then await: the handle completes event-driven.
    handle = net.submit_global_update("TN")
    outcome = handle.result()          # raises on timeout; cancel() while queued
    assert net.query("TN", "q(n) <- resident(n)") == [("anna",)]

    # Many requests at once stream back in completion order:
    handles = [net.submit_global_update("TN"),
               net.submit_query("TN", "q(n) <- resident(n)")]
    for done in as_completed(handles):
        print(done.kind, done.request_id, done.result())

Blocking one-liners (``net.global_update(...)``, ``net.query(...)``)
remain as thin wrappers over handles.  ``net.await_all(...)`` is
deprecated: it waits for *every* handle before returning anything —
use :func:`repro.core.requests.wait` for partitioned waits or
:func:`repro.core.requests.as_completed` for streaming; it is kept
only for PR-3-era drivers.  ``NodeConfig.max_active_sessions`` bounds
concurrent sessions per node (excess requests queue FIFO in global
seniority order), so update storms degrade gracefully.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced measurements.
"""

from repro.core.network import CoDBNetwork, UpdateHandle, UpdateOutcome
from repro.core.node import CoDBNode, NodeConfig
from repro.core.requests import (
    ALL_COMPLETED,
    FIRST_COMPLETED,
    RequestHandle,
    as_completed,
    wait,
)
from repro.core.rulefile import RuleFile
from repro.core.rules import CoordinationRule
from repro.core.statistics import (
    NetworkUpdateReport,
    NodeStatistics,
    UpdateReport,
)
from repro.core.superpeer import SuperPeer
from repro.errors import (
    CoDBError,
    RequestCancelledError,
    RequestTimeoutError,
)
from repro.p2p.inproc import InProcessNetwork, LatencyModel
from repro.p2p.procs import ProcessNetwork
from repro.p2p.tcp import TcpNetwork
from repro.relational.conjunctive import (
    Atom,
    Comparison,
    ConjunctiveQuery,
    GlavMapping,
    Variable,
)
from repro.relational.database import Database
from repro.relational.nulls import NullFactory
from repro.relational.parser import (
    parse_facts,
    parse_mapping,
    parse_query,
    parse_schema,
)
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import MarkedNull
from repro.relational.wrapper import (
    MediatorStore,
    MemoryStore,
    SqliteStore,
    Wrapper,
)
from repro.relational.minimize import minimize_mapping, minimize_query
from repro.relational.explain import explain
from repro.relational.persist import (
    dump_network,
    dump_store,
    load_network,
    load_store,
)
from repro.service import (
    QuotaExceededError,
    ServiceGateway,
    TenantQuotas,
    serve_in_thread,
)

__version__ = "1.0.0"

__all__ = [
    "CoDBNetwork",
    "CoDBNode",
    "NodeConfig",
    "UpdateOutcome",
    "UpdateHandle",
    "RequestHandle",
    "as_completed",
    "wait",
    "FIRST_COMPLETED",
    "ALL_COMPLETED",
    "RequestTimeoutError",
    "RequestCancelledError",
    "CoordinationRule",
    "RuleFile",
    "SuperPeer",
    "UpdateReport",
    "NodeStatistics",
    "NetworkUpdateReport",
    "CoDBError",
    "InProcessNetwork",
    "LatencyModel",
    "TcpNetwork",
    "ProcessNetwork",
    "Atom",
    "Comparison",
    "ConjunctiveQuery",
    "GlavMapping",
    "Variable",
    "Database",
    "DatabaseSchema",
    "RelationSchema",
    "MarkedNull",
    "NullFactory",
    "parse_schema",
    "parse_facts",
    "parse_query",
    "parse_mapping",
    "Wrapper",
    "MemoryStore",
    "SqliteStore",
    "MediatorStore",
    "minimize_query",
    "minimize_mapping",
    "explain",
    "dump_store",
    "load_store",
    "dump_network",
    "load_network",
    "ServiceGateway",
    "TenantQuotas",
    "QuotaExceededError",
    "serve_in_thread",
    "__version__",
]
