"""Report output for the benchmark suite.

Each experiment writes its series/table both to stdout (visible with
``pytest -s``) and to ``benchmarks/reports/<experiment>.txt``, which is
what EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence
from typing import Any

from repro._util import format_table
from repro.bench.metrics import UpdateMeasurement


class ReportWriter:
    """Accumulates and persists one experiment's report."""

    def __init__(self, directory: str, experiment: str) -> None:
        self.directory = directory
        self.experiment = experiment
        self._sections: list[str] = []

    def add_table(
        self,
        headers: Sequence[str],
        rows: Iterable[Sequence[Any]],
        *,
        title: str = "",
    ) -> str:
        text = format_table(headers, rows, title=title)
        self._sections.append(text)
        return text

    def add_measurements(
        self, measurements: Iterable[UpdateMeasurement], *, title: str = ""
    ) -> str:
        return self.add_table(
            UpdateMeasurement.HEADERS,
            [m.row() for m in measurements],
            title=title,
        )

    def add_text(self, text: str) -> None:
        self._sections.append(text)

    def flush(self) -> str:
        """Write the report file; returns its path."""
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, f"{self.experiment}.txt")
        body = "\n\n".join(self._sections) + "\n"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(body)
        print(f"\n[{self.experiment}]\n{body}")
        return path
