"""Sweep runners for the experiment files."""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.bench.metrics import UpdateMeasurement, measure_outcome
from repro.core.network import CoDBNetwork, UpdateOutcome
from repro.core.node import NodeConfig
from repro.p2p.inproc import LatencyModel
from repro.workloads.topologies import NetworkBlueprint


def build_and_update(
    blueprint: NetworkBlueprint,
    *,
    seed: int = 0,
    tuples_per_node: int = 50,
    overlap: float = 0.0,
    config: NodeConfig | None = None,
    latency: LatencyModel | None = None,
) -> tuple[CoDBNetwork, UpdateOutcome]:
    """Instantiate *blueprint* and run one global update from its origin."""
    network = blueprint.build(
        seed=seed,
        tuples_per_node=tuples_per_node,
        overlap=overlap,
        config=config,
        latency=latency,
    )
    outcome = network.global_update(blueprint.origin)
    return network, outcome


def measure_blueprint_update(
    blueprint: NetworkBlueprint,
    *,
    seed: int = 0,
    tuples_per_node: int = 50,
    overlap: float = 0.0,
    config: NodeConfig | None = None,
    latency: LatencyModel | None = None,
    label: str | None = None,
) -> UpdateMeasurement:
    """One measurement row for one blueprint."""
    _, outcome = build_and_update(
        blueprint,
        seed=seed,
        tuples_per_node=tuples_per_node,
        overlap=overlap,
        config=config,
        latency=latency,
    )
    return measure_outcome(
        label or blueprint.name,
        outcome,
        nodes=blueprint.size,
        rules=blueprint.edge_count,
        seed=seed,
        tuples_per_node=tuples_per_node,
        overlap=overlap,
    )


def sweep(
    blueprints: Iterable[NetworkBlueprint],
    *,
    seed: int = 0,
    tuples_per_node: int = 50,
    overlap: float = 0.0,
    config: NodeConfig | None = None,
    latency: LatencyModel | None = None,
    label_fn: Callable[[NetworkBlueprint], str] | None = None,
) -> list[UpdateMeasurement]:
    """Measure a family of blueprints with identical parameters."""
    rows = []
    for blueprint in blueprints:
        rows.append(
            measure_blueprint_update(
                blueprint,
                seed=seed,
                tuples_per_node=tuples_per_node,
                overlap=overlap,
                config=config,
                latency=latency,
                label=label_fn(blueprint) if label_fn else None,
            )
        )
    return rows
