"""Benchmark support: measurements, sweep runners, report formatting.

The actual experiments live in the repository's ``benchmarks/``
directory (one pytest-benchmark file per table/figure of
EXPERIMENTS.md); this package holds the reusable machinery so the
experiment files stay declarative.
"""

from repro.bench.metrics import UpdateMeasurement, measure_outcome
from repro.bench.runner import (
    build_and_update,
    measure_blueprint_update,
    sweep,
)
from repro.bench.reporting import ReportWriter

__all__ = [
    "UpdateMeasurement",
    "measure_outcome",
    "build_and_update",
    "measure_blueprint_update",
    "sweep",
    "ReportWriter",
]
