"""Measurement records extracted from update outcomes.

One :class:`UpdateMeasurement` row corresponds to one global update
run and carries exactly the statistics §4 of the paper names: total
execution time, result messages (total and per coordination rule),
data volumes per message, and the longest update propagation path —
plus the transport-level totals our substrate can additionally see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.network import UpdateOutcome


@dataclass
class UpdateMeasurement:
    """Flat record of one global update, ready for a report table."""

    label: str
    nodes: int
    rules: int
    #: Virtual (simulator) or real (TCP) seconds, per the transport clock.
    wall_time: float
    result_messages: int
    result_bytes: int
    transport_messages: int
    transport_bytes: int
    rows_imported: int
    nulls_minted: int
    longest_path: int
    messages_per_rule: dict[str, int] = field(default_factory=dict)
    volume_per_message_mean: float = 0.0
    volume_per_message_max: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def row(self) -> list:
        """The default report-table row."""
        return [
            self.label,
            self.nodes,
            self.rules,
            f"{self.wall_time:.6f}",
            self.result_messages,
            self.result_bytes,
            self.transport_messages,
            self.rows_imported,
            self.longest_path,
        ]

    HEADERS = [
        "workload",
        "nodes",
        "rules",
        "wall_s",
        "result_msgs",
        "result_bytes",
        "all_msgs",
        "rows_new",
        "longest_path",
    ]


def measure_outcome(
    label: str, outcome: UpdateOutcome, *, nodes: int, rules: int, **extra: Any
) -> UpdateMeasurement:
    """Convert an :class:`UpdateOutcome` into a measurement record."""
    volumes = outcome.report.message_volumes()
    mean = sum(volumes) / len(volumes) if volumes else 0.0
    return UpdateMeasurement(
        label=label,
        nodes=nodes,
        rules=rules,
        wall_time=outcome.wall_time,
        result_messages=outcome.report.total_messages,
        result_bytes=outcome.report.total_bytes,
        transport_messages=outcome.transport_messages,
        transport_bytes=outcome.transport_bytes,
        rows_imported=outcome.report.total_rows_imported,
        nulls_minted=outcome.report.total_nulls_minted,
        longest_path=outcome.report.longest_path,
        messages_per_rule=outcome.report.messages_per_rule(),
        volume_per_message_mean=mean,
        volume_per_message_max=max(volumes, default=0),
        extra=dict(extra),
    )
