"""Per-peer endpoint: handler registration and dispatch.

The coDB node (§2's DBM + JXTA Layer) reacts to typed messages.  An
:class:`Endpoint` binds one peer id to the transport and dispatches
each incoming message to the handler registered for its kind —
unknown kinds go to an optional default handler (and are counted, so
protocol bugs surface in tests rather than vanish).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable
from typing import Any

from repro.errors import ProtocolError
from repro.p2p.ids import IdAuthority
from repro.p2p.messages import Message
from repro.p2p.transport import Transport

Handler = Callable[[Message], None]


class Endpoint:
    """One peer's attachment to the transport."""

    #: Bound on the ``(sender, message_id)`` duplicate-suppression log;
    #: oldest entries are evicted FIFO.  8192 ids comfortably covers
    #: every in-flight window the protocol produces while keeping the
    #: memory footprint per endpoint bounded.
    DEDUP_LIMIT = 8192

    def __init__(
        self,
        peer_id: str,
        transport: Transport,
        ids: IdAuthority,
        *,
        strict: bool = False,
    ) -> None:
        self.peer_id = peer_id
        self.transport = transport
        self.ids = ids
        self.strict = strict
        self._handlers: dict[str, Handler] = {}
        self._default_handler: Handler | None = None
        self.unhandled_count = 0
        #: At-most-once processing over an at-least-once wire: a fault
        #: layer (or a real network) may deliver the same message
        #: twice; exact duplicates are dropped here by
        #: ``(sender, message_id)``.  The sender is part of the key
        #: because per-worker id authorities can mint colliding
        #: counters across processes.
        self._seen_ids: OrderedDict[tuple[str, str], None] = OrderedDict()
        self.duplicates_dropped = 0
        transport.register(peer_id, self._dispatch)

    # -- handler registration ----------------------------------------------

    def on(self, kind: str, handler: Handler) -> None:
        """Register *handler* for message kind *kind* (one per kind)."""
        if kind in self._handlers:
            raise ProtocolError(
                f"peer {self.peer_id!r} already handles {kind!r}"
            )
        self._handlers[kind] = handler

    def on_default(self, handler: Handler) -> None:
        self._default_handler = handler

    def _dispatch(self, message: Message) -> None:
        if message.message_id:
            key = (message.sender, message.message_id)
            if key in self._seen_ids:
                self.duplicates_dropped += 1
                return
            self._seen_ids[key] = None
            if len(self._seen_ids) > self.DEDUP_LIMIT:
                self._seen_ids.popitem(last=False)
        handler = self._handlers.get(message.kind)
        if handler is not None:
            handler(message)
            return
        if self._default_handler is not None:
            self._default_handler(message)
            return
        self.unhandled_count += 1
        if self.strict:
            raise ProtocolError(
                f"peer {self.peer_id!r} has no handler for {message.kind!r}"
            )

    # -- sending -------------------------------------------------------------

    def send(self, recipient: str, kind: str, payload: dict[str, Any]) -> Message:
        """Build, stamp and send one message; returns it (for stats)."""
        message = Message(
            kind=kind,
            sender=self.peer_id,
            recipient=recipient,
            payload=payload,
            message_id=self.ids.message_id(),
        )
        self.transport.send(message)
        return message

    def try_send(
        self, recipient: str, kind: str, payload: dict[str, Any]
    ) -> Message | None:
        """Like :meth:`send`, but returns ``None`` when the recipient
        has left the network instead of raising (dynamic topologies)."""
        from repro.errors import UnknownPeerError

        try:
            return self.send(recipient, kind, payload)
        except UnknownPeerError:
            return None

    def detach(self) -> None:
        self.transport.unregister(self.peer_id)

    def reattach(self) -> None:
        """Re-register after a :meth:`detach` — the rejoin handshake's
        first step.  Handler registrations and the dedup log survive
        (stale entries are harmless: the old incarnation's senders are
        exactly the peers the rejoin protocol resynchronises with)."""
        if not self.transport.is_registered(self.peer_id):
            self.transport.register(self.peer_id, self._dispatch)

    def now(self) -> float:
        return self.transport.now()
