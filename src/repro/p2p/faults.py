"""Adversarial fault injection, transport-agnostic.

The paper claims termination "even if nodes and coordination rules
appear or disappear during the computation" (§1) — but a transport
that delivers every message reliably and in order never *tests* that
claim.  This module makes any transport adversarial while keeping the
fault schedule reproducible: a :class:`FaultInjector` composes
pluggable :class:`FaultModel`\\ s (the structure follows the
``FaultModel``/``MobilityModel`` plug-ins of wireless-sensor
simulators), each seeded independently, and the transport —
:class:`~repro.p2p.inproc.InProcessNetwork` *or*
:class:`~repro.p2p.tcp.TcpNetwork` (and through it the process-per-node
runner, whose workers install the same serialised model stack on their
own transports) — consults it at two hook points:

* **send** — every scheduled message gets a :class:`Verdict`: deliver
  (possibly several copies, possibly with extra delay) or *bounce*
  (the sender receives the standard ``undeliverable`` notification, as
  if the recipient had left — the protocol's existing failure
  machinery then closes links and keeps the computation terminating).
  Per-pipe FIFO is preserved whatever the models do (the transport's
  pair horizon clamps delivery times), exactly like a real TCP pipe
  under loss and retransmission; *cross*-pipe order scrambles freely.
* **after delivery** — event-count hooks
  (:meth:`FaultInjector.at_delivery`) fire actions at exact protocol
  moments ("after the victim processed its second ``update_request``"),
  replacing wall-clock ``run_for`` timing for crash/rejoin/flap/sever
  scheduling — fault timing is deterministic across latency models.

The models:

* :class:`MessageLoss` — each matching message is lost with
  probability *p*; a lost message is retransmitted up to *retries*
  times (surfacing as extra delay, like TCP retransmission), and when
  retries are exhausted the loss bounces to the sender.  A run whose
  losses are all absorbed by retries is differentially equal to the
  fault-free run; an exhausted loss yields a precisely-reported
  ``partial`` outcome.
* :class:`Duplication` — delivers extra copies.  Safe because every
  endpoint drops exact duplicates by ``(sender, message_id)``
  (at-most-once processing over an at-least-once wire).
* :class:`Reorder` / :class:`ExtraDelay` — random or fixed extra
  latency: scrambles cross-pipe delivery order and stretches the
  schedule without changing any outcome.
* :class:`LinkFlap` — one link alternates up/down by *message counts*
  (never wall time): every ``down_every`` crossings it drops for
  ``down_for`` attempts, each of which bounces.
* :class:`Partition` — a full cut between named groups that can later
  :meth:`~Partition.heal`.  Severing plays the failure detector:
  both sides of every cut pair receive ``peer_down`` notices, and
  cross-cut messages bounce until the heal.  The driver can ask the
  transport for :meth:`FaultInjector.severed_pairs` — that is what
  lets ``CoDBNetwork`` report ``outcome="partial"`` naming exactly
  the severed component instead of silently truncating the §4 report.

* :class:`LognormalDelay` / :class:`GilbertElliott` —
  distribution-shaped weather replacing the Bernoulli-only models:
  heavy-tailed per-message latency drawn from a lognormal, and bursty
  loss from the classic two-state Gilbert–Elliott Markov channel
  (losses cluster, as they do on real links, instead of arriving
  independently).
* :class:`ScheduledCrash` — crash-and-rejoin as a first-class fault
  model: after the N-th matching delivery at the victim the crash
  action fires (kill the node, SIGKILL the worker), and optionally a
  rejoin action fires a counted number of deliveries later.  Timing is
  event-count based like every other model, so the schedule is
  identical under any latency model and on any transport.

Every probabilistic model draws from a ``random.Random`` derived per
message from the model's seed and the message's **edge stream
position** — a per-(sender, recipient, kind) sequence number.  The
draw therefore depends only on *how many messages of this kind have
crossed this edge before*, never on cross-edge interleaving or thread
timing, which is what makes the same seeded model stack produce
**identical verdict traces** on the single-threaded simulator and on
the multi-threaded TCP transport (and lets N worker processes each
run their own copy of the stack while jointly behaving like one).
Counter-based models (:class:`LinkFlap`, which counts attempts across
both directions of a pair) remain deterministic on the simulator only.
"""

from __future__ import annotations

import math
import random
import threading
import zlib
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable

from repro.errors import ProtocolError
from repro.p2p.messages import Message


@dataclass
class Verdict:
    """What happens to one message about to be scheduled.

    ``copies`` is how many times the message is delivered (0 never
    happens: a loss is a *bounce*, not a silent vanish — silent drops
    would deadlock the Dijkstra–Scholten deficits, which is exactly
    the hang a reliable protocol over a lossy link avoids by
    retransmitting or surfacing the failure).
    """

    copies: int = 1
    extra_delay: float = 0.0
    bounce: bool = False


class FaultModel:
    """Base class for pluggable fault models.

    Subclasses override :meth:`on_send` (mutate the verdict) and/or
    :meth:`on_delivered` (observe deliveries — flap counters, mobility
    triggers).  ``bind`` is called by the injector with a dedicated
    seeded RNG and the model's derived stream seed (what :meth:`draw`
    keys per-message RNGs on).
    """

    name = "fault"

    def __init__(self) -> None:
        self.rng = random.Random(0)
        self._stream_seed = 0
        #: (sender, recipient, kind) -> messages seen on that edge.
        self._edge_seq: dict[tuple[str, str, str], int] = {}

    def bind(
        self,
        injector: "FaultInjector",
        rng: random.Random,
        stream_seed: int = 0,
    ) -> None:
        self.injector = injector
        self.rng = rng
        self._stream_seed = stream_seed

    def draw(self, message: Message) -> random.Random:
        """A per-message RNG keyed on the message's edge-stream
        position.  The K-th ``kind`` message from A to B always gets
        the same RNG under the same seed — regardless of transport,
        thread timing, or which other models are installed — so seeded
        verdict traces are identical across deployment modes."""
        edge = (message.sender, message.recipient, message.kind)
        sequence = self._edge_seq.get(edge, 0)
        self._edge_seq[edge] = sequence + 1
        key = (
            f"{self._stream_seed}:{message.sender}>{message.recipient}"
            f":{message.kind}:{sequence}"
        )
        return random.Random(zlib.crc32(key.encode()))

    def on_send(self, message: Message, verdict: Verdict) -> None:
        """Adjust *verdict* for a message about to be scheduled."""

    def on_delivered(self, message: Message) -> None:
        """Observe one completed delivery."""

    def stats(self) -> dict:
        """Counters for benchmarks ({} unless the model keeps any)."""
        return {}

    def spec(self) -> dict:
        """Serialisable constructor parameters (``{"model": name, ...}``)
        for shipping the model to worker processes; raises for models
        that hold callables or driver-side state."""
        raise ProtocolError(
            f"fault model {self.name!r} is not serialisable"
        )


class MessageLoss(FaultModel):
    """Lose each matching message with probability *p*, retransmitting.

    A loss absorbed by a retry shows up as ``retry_delay`` extra
    latency per attempt; a loss that exhausts ``retries`` bounces to
    the sender (failure semantics — links close, the report goes
    ``partial``).  With the default ``retries=3`` and moderate *p*,
    most runs are fault-free-equivalent.
    """

    name = "loss"

    def __init__(
        self,
        probability: float,
        *,
        retries: int = 3,
        retry_delay: float = 0.002,
        kinds: Iterable[str] | None = None,
    ) -> None:
        super().__init__()
        self.probability = probability
        self.retries = retries
        self.retry_delay = retry_delay
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.messages_lost = 0
        self.retries_used = 0
        self.bounced = 0

    def on_send(self, message: Message, verdict: Verdict) -> None:
        if self.kinds is not None and message.kind not in self.kinds:
            return
        rng = self.draw(message)
        attempts = 0
        while attempts <= self.retries and rng.random() < self.probability:
            attempts += 1
        if attempts == 0:
            return
        self.messages_lost += attempts
        if attempts > self.retries:
            verdict.bounce = True
            self.bounced += 1
        else:
            self.retries_used += attempts
            verdict.extra_delay += attempts * self.retry_delay

    def stats(self) -> dict:
        return {
            "messages_lost": self.messages_lost,
            "retries_used": self.retries_used,
            "bounced": self.bounced,
        }

    def spec(self) -> dict:
        return {
            "model": self.name,
            "probability": self.probability,
            "retries": self.retries,
            "retry_delay": self.retry_delay,
            "kinds": None if self.kinds is None else sorted(self.kinds),
        }


class Duplication(FaultModel):
    """Deliver extra copies of each matching message with probability
    *p* (an at-least-once wire; endpoints dedup by message id)."""

    name = "duplication"

    def __init__(
        self,
        probability: float,
        *,
        copies: int = 2,
        kinds: Iterable[str] | None = None,
    ) -> None:
        super().__init__()
        self.probability = probability
        self.copies = copies
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.duplicated = 0

    def on_send(self, message: Message, verdict: Verdict) -> None:
        if self.kinds is not None and message.kind not in self.kinds:
            return
        if self.draw(message).random() < self.probability:
            verdict.copies = max(verdict.copies, self.copies)
            self.duplicated += 1

    def stats(self) -> dict:
        return {"duplicated": self.duplicated}

    def spec(self) -> dict:
        return {
            "model": self.name,
            "probability": self.probability,
            "copies": self.copies,
            "kinds": None if self.kinds is None else sorted(self.kinds),
        }


class Reorder(FaultModel):
    """Scramble cross-pipe delivery order with random extra delay.

    Per-pipe FIFO survives (the transport clamps to the pair horizon),
    so this models what a mesh of independent TCP pipes really does:
    messages on *different* pipes overtake each other freely.
    """

    name = "reorder"

    def __init__(
        self, probability: float = 1.0, *, max_extra: float = 0.01
    ) -> None:
        super().__init__()
        self.probability = probability
        self.max_extra = max_extra
        self.delayed = 0

    def on_send(self, message: Message, verdict: Verdict) -> None:
        rng = self.draw(message)
        if rng.random() < self.probability:
            verdict.extra_delay += rng.uniform(0.0, self.max_extra)
            self.delayed += 1

    def stats(self) -> dict:
        return {"delayed": self.delayed}

    def spec(self) -> dict:
        return {
            "model": self.name,
            "probability": self.probability,
            "max_extra": self.max_extra,
        }


class ExtraDelay(FaultModel):
    """Fixed extra latency (plus optional uniform jitter) on matching
    messages — a slow or congested path."""

    name = "delay"

    def __init__(
        self,
        delay: float = 0.005,
        *,
        jitter: float = 0.0,
        kinds: Iterable[str] | None = None,
    ) -> None:
        super().__init__()
        self.delay = delay
        self.jitter = jitter
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.delayed = 0

    def on_send(self, message: Message, verdict: Verdict) -> None:
        if self.kinds is not None and message.kind not in self.kinds:
            return
        verdict.extra_delay += self.delay
        if self.jitter > 0.0:
            verdict.extra_delay += self.draw(message).uniform(0.0, self.jitter)
        self.delayed += 1

    def stats(self) -> dict:
        return {"delayed": self.delayed}

    def spec(self) -> dict:
        return {
            "model": self.name,
            "delay": self.delay,
            "jitter": self.jitter,
            "kinds": None if self.kinds is None else sorted(self.kinds),
        }


class LognormalDelay(FaultModel):
    """Heavy-tailed per-message latency drawn from a lognormal.

    Real network delay distributions are right-skewed: most messages
    cross near the median, a long tail straggles.  ``median`` is the
    distribution's median extra delay (the lognormal's ``exp(mu)``),
    ``sigma`` its shape (0 = constant, ~1 = heavy tail), and ``cap``
    clamps the tail so a single unlucky draw cannot stall a benchmark.
    Deterministic per edge-stream position like every draw-based model.
    """

    name = "lognormal"

    def __init__(
        self,
        *,
        median: float = 0.002,
        sigma: float = 0.5,
        cap: float = 0.05,
        kinds: Iterable[str] | None = None,
    ) -> None:
        super().__init__()
        if median <= 0.0:
            raise ValueError("lognormal median must be positive")
        self.median = median
        self.sigma = sigma
        self.cap = cap
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.delayed = 0
        self.capped = 0

    def on_send(self, message: Message, verdict: Verdict) -> None:
        if self.kinds is not None and message.kind not in self.kinds:
            return
        delay = self.draw(message).lognormvariate(
            math.log(self.median), self.sigma
        )
        if delay > self.cap:
            delay = self.cap
            self.capped += 1
        verdict.extra_delay += delay
        self.delayed += 1

    def stats(self) -> dict:
        return {"delayed": self.delayed, "capped": self.capped}

    def spec(self) -> dict:
        return {
            "model": self.name,
            "median": self.median,
            "sigma": self.sigma,
            "cap": self.cap,
            "kinds": None if self.kinds is None else sorted(self.kinds),
        }


class GilbertElliott(FaultModel):
    """Bursty loss: the two-state Gilbert–Elliott Markov channel.

    Each (sender, recipient) edge carries its own channel state, GOOD
    or BAD, stepped once per message on that edge: GOOD→BAD with
    probability ``p_bad``, BAD→GOOD with ``p_recover``.  The loss
    probability is ``loss_good`` in GOOD (usually 0) and ``loss_bad``
    in BAD — so losses arrive in bursts while the edge sits in BAD,
    the pattern independent Bernoulli loss cannot produce.  Losses use
    the same retry-then-bounce semantics as :class:`MessageLoss`.

    State transitions draw from the per-message edge stream, and the
    state itself is a function of the edge's message *count* — both
    transport-independent, so the burst schedule is identical on the
    simulator and over TCP.
    """

    name = "gilbert"

    def __init__(
        self,
        *,
        p_bad: float = 0.05,
        p_recover: float = 0.5,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
        retries: int = 3,
        retry_delay: float = 0.002,
        kinds: Iterable[str] | None = None,
    ) -> None:
        super().__init__()
        self.p_bad = p_bad
        self.p_recover = p_recover
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.retries = retries
        self.retry_delay = retry_delay
        self.kinds = frozenset(kinds) if kinds is not None else None
        #: (sender, recipient) -> channel is in the BAD state.
        self._bad: dict[tuple[str, str], bool] = {}
        self.bursts = 0
        self.messages_lost = 0
        self.retries_used = 0
        self.bounced = 0

    def on_send(self, message: Message, verdict: Verdict) -> None:
        if self.kinds is not None and message.kind not in self.kinds:
            return
        rng = self.draw(message)
        edge = (message.sender, message.recipient)
        bad = self._bad.get(edge, False)
        if bad:
            if rng.random() < self.p_recover:
                bad = False
        elif rng.random() < self.p_bad:
            bad = True
            self.bursts += 1
        self._bad[edge] = bad
        probability = self.loss_bad if bad else self.loss_good
        if probability <= 0.0:
            return
        attempts = 0
        while attempts <= self.retries and rng.random() < probability:
            attempts += 1
        if attempts == 0:
            return
        self.messages_lost += attempts
        if attempts > self.retries:
            verdict.bounce = True
            self.bounced += 1
        else:
            self.retries_used += attempts
            verdict.extra_delay += attempts * self.retry_delay

    def stats(self) -> dict:
        return {
            "bursts": self.bursts,
            "messages_lost": self.messages_lost,
            "retries_used": self.retries_used,
            "bounced": self.bounced,
        }

    def spec(self) -> dict:
        return {
            "model": self.name,
            "p_bad": self.p_bad,
            "p_recover": self.p_recover,
            "loss_good": self.loss_good,
            "loss_bad": self.loss_bad,
            "retries": self.retries,
            "retry_delay": self.retry_delay,
            "kinds": None if self.kinds is None else sorted(self.kinds),
        }


class LinkFlap(FaultModel):
    """One link alternating up/down, timed purely by message counts.

    After every ``down_every`` successful crossings (either direction)
    the link goes down for the next ``down_for`` send attempts.  Two
    outage semantics:

    * ``mode="delay"`` (default) — a *short* outage a reliable pipe
      rides out: each affected message is queued and arrives
      ``outage_delay`` late per remaining down-slot (TCP
      retransmission).  Absorbable — the run stays differential-equal
      to fault-free.
    * ``mode="bounce"`` — the outage is long enough for the failure
      detector: each attempt bounces to the sender, links close with
      cause "failure" and the report goes ``partial``.

    No wall-clock anywhere, so the flap schedule is identical under
    any latency model.
    """

    name = "flap"

    def __init__(
        self,
        a: str,
        b: str,
        *,
        down_every: int = 5,
        down_for: int = 2,
        mode: str = "delay",
        outage_delay: float = 0.005,
    ) -> None:
        super().__init__()
        if mode not in ("delay", "bounce"):
            raise ValueError(f"unknown flap mode {mode!r}")
        self.pair = frozenset((a, b))
        self._ab = tuple(sorted((a, b)))
        self.down_every = down_every
        self.down_for = down_for
        self.mode = mode
        self.outage_delay = outage_delay
        self._crossed = 0
        self._down_left = 0
        self.flaps = 0
        self.bounced = 0
        self.delayed = 0

    def _on_link(self, message: Message) -> bool:
        return frozenset((message.sender, message.recipient)) == self.pair

    def on_send(self, message: Message, verdict: Verdict) -> None:
        if not self._on_link(message):
            return
        if self._down_left > 0:
            self._down_left -= 1
            if self.mode == "bounce":
                self.bounced += 1
                verdict.bounce = True
            else:
                self.delayed += 1
                verdict.extra_delay += self.outage_delay * (self._down_left + 1)
            return
        self._crossed += 1
        if self._crossed >= self.down_every:
            self._crossed = 0
            self._down_left = self.down_for
            self.flaps += 1

    def stats(self) -> dict:
        return {
            "flaps": self.flaps,
            "bounced": self.bounced,
            "delayed": self.delayed,
        }

    def spec(self) -> dict:
        return {
            "model": self.name,
            "a": self._ab[0],
            "b": self._ab[1],
            "down_every": self.down_every,
            "down_for": self.down_for,
            "mode": self.mode,
            "outage_delay": self.outage_delay,
        }


class Partition(FaultModel):
    """A full partition between named groups, healable.

    Until :meth:`sever` is called the model is inert.  Severing makes
    every cross-group message bounce and (with ``announce=True``, the
    default) delivers ``peer_down`` notices to both ends of every cut
    pair — the failure detector's timeout, compressed to an event.
    :meth:`heal` restores the cut; traffic flows again and the next
    update completes in full.
    """

    name = "partition"

    def __init__(
        self,
        groups: Iterable[Iterable[str]],
        *,
        announce: bool = True,
    ) -> None:
        super().__init__()
        self.groups = [tuple(group) for group in groups]
        self.announce = announce
        self._group_of: dict[str, int] = {}
        for index, group in enumerate(self.groups):
            for peer in group:
                self._group_of[peer] = index
        self.active = False
        self.bounced = 0

    def severs(self, a: str, b: str) -> bool:
        """Whether the active cut separates peers *a* and *b*."""
        if not self.active:
            return False
        ga = self._group_of.get(a)
        gb = self._group_of.get(b)
        return ga is not None and gb is not None and ga != gb

    def severed_pairs(self) -> frozenset:
        if not self.active:
            return frozenset()
        pairs = set()
        for index, group in enumerate(self.groups):
            for other in self.groups[index + 1:]:
                for a in group:
                    for b in other:
                        pairs.add(frozenset((a, b)))
        return frozenset(pairs)

    def sever(self) -> None:
        """Activate the cut (idempotent)."""
        if self.active:
            return
        self.active = True
        if self.announce:
            self.injector.announce_severed(self.severed_pairs())

    def heal(self) -> None:
        self.active = False

    def on_send(self, message: Message, verdict: Verdict) -> None:
        if self.severs(message.sender, message.recipient):
            self.bounced += 1
            verdict.bounce = True

    def stats(self) -> dict:
        return {"active": self.active, "bounced": self.bounced}


class ScheduledCrash(FaultModel):
    """Crash-and-rejoin as a first-class, serialisable fault model.

    Counts deliveries *to* ``victim`` (optionally only of ``kind``);
    after the ``after``-th one the ``crash`` action fires — on the
    in-process transport that is typically ``node.leave_network``, in a
    worker process it is ``os.kill(os.getpid(), SIGKILL)`` so the
    supervisor's restart path is exercised for real.  If
    ``rejoin_after`` is set, the model then counts *any* subsequent
    delivery anywhere (the victim is dead; nothing reaches it) and
    fires the ``rejoin`` action after that many — event-count timing,
    so the schedule is identical under any latency model.

    The actions are host-side callables and do not serialise;
    :meth:`spec` ships only the schedule, and each transport host wires
    its own crash/rejoin actions when rebuilding from the spec.
    """

    name = "crash"

    def __init__(
        self,
        victim: str,
        *,
        after: int = 1,
        kind: str | None = None,
        rejoin_after: int | None = None,
        crash: Callable[[], None] | None = None,
        rejoin: Callable[[], None] | None = None,
    ) -> None:
        super().__init__()
        self.victim = victim
        self.after = after
        self.kind = kind
        self.rejoin_after = rejoin_after
        self.crash = crash
        self.rejoin = rejoin
        self.crashed = False
        self.rejoined = False
        self._to_crash = after
        self._to_rejoin = rejoin_after

    def on_delivered(self, message: Message) -> None:
        if not self.crashed:
            if message.recipient != self.victim:
                return
            if self.kind is not None and message.kind != self.kind:
                return
            self._to_crash -= 1
            if self._to_crash <= 0:
                self.crashed = True
                if self.crash is not None:
                    self.crash()
            return
        if self.rejoined or self._to_rejoin is None:
            return
        self._to_rejoin -= 1
        if self._to_rejoin <= 0:
            self.rejoined = True
            if self.rejoin is not None:
                self.rejoin()

    def stats(self) -> dict:
        return {"crashed": self.crashed, "rejoined": self.rejoined}

    def spec(self) -> dict:
        return {
            "model": self.name,
            "victim": self.victim,
            "after": self.after,
            "kind": self.kind,
            "rejoin_after": self.rejoin_after,
        }


@dataclass
class _DeliveryHook:
    """One event-count trigger (see :meth:`FaultInjector.at_delivery`)."""

    action: Callable[[], None]
    kind: str | None = None
    sender: str | None = None
    recipient: str | None = None
    count: int = 1
    repeat: bool = False
    fired: int = 0
    done: bool = False
    _remaining: int = field(init=False)

    def __post_init__(self) -> None:
        self._remaining = self.count

    def matches(self, message: Message) -> bool:
        return (
            (self.kind is None or message.kind == self.kind)
            and (self.sender is None or message.sender == self.sender)
            and (self.recipient is None or message.recipient == self.recipient)
        )

    def observe(self, message: Message) -> bool:
        """Count one matching delivery; returns True when the action
        should fire now."""
        if self.done or not self.matches(message):
            return False
        self._remaining -= 1
        if self._remaining > 0:
            return False
        if self.repeat:
            self._remaining = self.count
        else:
            self.done = True
        self.fired += 1
        return True

    def cancel(self) -> None:
        self.done = True


def _derive_seed(seed: int, index: int, name: str) -> int:
    """Stable per-model seed derivation.  ``hash()`` of a string is
    randomized per process (PYTHONHASHSEED), which would make the same
    (seed, model stack) produce different fault traces across runs —
    CRC32 of the textual key keeps traces reproducible everywhere."""
    return zlib.crc32(f"{seed}:{index}:{name}".encode())


class FaultInjector:
    """Composes fault models and delivery hooks over one transport.

    Install with ``InProcessNetwork(faults=...)`` or
    ``transport.install_faults(...)`` (the latter is what scenario
    drivers use: build and :meth:`~repro.core.network.CoDBNetwork.start`
    the network fault-free, then turn the weather bad).  Usable with no
    models at all purely for :meth:`at_delivery` scheduling.
    """

    def __init__(self, *models: FaultModel, seed: int = 0) -> None:
        self.models = list(models)
        self.seed = seed
        self.transport = None
        self._hooks: list[_DeliveryHook] = []
        self.verdicts = 0
        self.bounces = 0
        self.copies_added = 0
        # TcpNetwork consults verdicts from node threads and
        # after_delivery from per-peer delivery threads; the simulator
        # is single-threaded and pays only an uncontended acquire.
        # Reentrant because a hook action may itself trigger sends.
        self._lock = threading.RLock()
        self.record_trace = False
        self.trace: list[tuple] = []
        self._trace_seq: dict[tuple[str, str, str], int] = {}
        for index, model in enumerate(self.models):
            stream = _derive_seed(seed, index, model.name)
            model.bind(self, random.Random(stream), stream_seed=stream)

    # -- composition ------------------------------------------------------

    def add_model(self, model: FaultModel) -> FaultModel:
        stream = _derive_seed(self.seed, len(self.models), model.name)
        model.bind(self, random.Random(stream), stream_seed=stream)
        self.models.append(model)
        return model

    def bind_transport(self, transport) -> None:
        self.transport = transport

    # -- send-side hook ---------------------------------------------------

    def verdict(self, message: Message) -> Verdict:
        """Combined verdict for one message about to be scheduled."""
        with self._lock:
            verdict = Verdict()
            for model in self.models:
                model.on_send(message, verdict)
            self.verdicts += 1
            if verdict.bounce:
                self.bounces += 1
            elif verdict.copies > 1:
                self.copies_added += verdict.copies - 1
            if self.record_trace:
                edge = (message.sender, message.recipient, message.kind)
                sequence = self._trace_seq.get(edge, 0)
                self._trace_seq[edge] = sequence + 1
                self.trace.append(
                    (
                        message.sender,
                        message.recipient,
                        message.kind,
                        sequence,
                        verdict.copies,
                        round(verdict.extra_delay, 9),
                        verdict.bounce,
                    )
                )
            return verdict

    def start_trace(self) -> None:
        """Begin recording one (edge, seq) -> verdict tuple per consulted
        message.  Traces on different transports compare *sorted*: wall
        time interleaves edges differently, but each edge's verdict
        sequence is deterministic."""
        with self._lock:
            self.record_trace = True
            self.trace = []
            self._trace_seq = {}

    # -- delivery-side hook ------------------------------------------------

    def after_delivery(self, message: Message) -> None:
        with self._lock:
            for model in self.models:
                model.on_delivered(message)
            fired = [hook for hook in self._hooks if hook.observe(message)]
            self._hooks = [h for h in self._hooks if not h.done]
        for hook in fired:
            hook.action()

    def at_delivery(
        self,
        action: Callable[[], None],
        *,
        kind: str | None = None,
        sender: str | None = None,
        recipient: str | None = None,
        count: int = 1,
        repeat: bool = False,
    ) -> _DeliveryHook:
        """Run *action* right after the *count*-th delivery matching
        the filters — the deterministic, latency-model-independent
        replacement for ``run_for``-based fault timing.  Returns the
        hook (``hook.cancel()`` disarms it)."""
        hook = _DeliveryHook(
            action=action,
            kind=kind,
            sender=sender,
            recipient=recipient,
            count=count,
            repeat=repeat,
        )
        self._hooks.append(hook)
        return hook

    # -- partitions --------------------------------------------------------

    def severed_pairs(self) -> frozenset:
        """Union of every active partition's cut pairs (what the
        network driver's reachability check reads)."""
        pairs: set = set()
        for model in self.models:
            if isinstance(model, Partition):
                pairs |= model.severed_pairs()
        return frozenset(pairs)

    def announce_severed(self, pairs: frozenset) -> None:
        """Play the failure detector for a fresh cut: both ends of
        every severed pair get a ``peer_down`` notice for the other."""
        if self.transport is None:
            return
        for pair in pairs:
            a, b = sorted(pair)
            self.transport.announce_unreachable(peer=a, to=b)
            self.transport.announce_unreachable(peer=b, to=a)

    # -- reporting ---------------------------------------------------------

    def totals(self) -> dict:
        """Per-model counters, for benchmark JSON."""
        totals: dict = {
            "verdicts": self.verdicts,
            "bounces": self.bounces,
            "copies_added": self.copies_added,
        }
        for model in self.models:
            stats = model.stats()
            if stats:
                totals[model.name] = stats
        return totals

    # -- serialisation -----------------------------------------------------

    def spec(self) -> dict:
        """Wire form of this injector: seed + per-model specs, in model
        order (order matters — stream seeds derive from the index).
        Raises :class:`ProtocolError` if any model is host-bound
        (e.g. :class:`Partition`, whose sever/heal are driver calls)."""
        return {
            "seed": self.seed,
            "models": [model.spec() for model in self.models],
        }


#: model name -> constructor keyword set, for spec round-tripping.
_MODEL_CLASSES: dict[str, type[FaultModel]] = {
    cls.name: cls
    for cls in (
        MessageLoss,
        Duplication,
        Reorder,
        ExtraDelay,
        LognormalDelay,
        GilbertElliott,
        LinkFlap,
        ScheduledCrash,
    )
}


def build_models(
    specs: Iterable[dict],
    *,
    crash_actions: dict[str, Callable[[], None]] | None = None,
    rejoin_actions: dict[str, Callable[[], None]] | None = None,
) -> list[FaultModel]:
    """Rebuild fault models from their :meth:`FaultModel.spec` forms.

    ``crash_actions`` / ``rejoin_actions`` map a :class:`ScheduledCrash`
    victim name to the host-side callable to fire — the schedule ships,
    the action stays local (a worker kills its own process; the
    simulator detaches the node).
    """
    models: list[FaultModel] = []
    for spec in specs:
        params = dict(spec)
        name = params.pop("model")
        cls = _MODEL_CLASSES.get(name)
        if cls is None:
            raise ProtocolError(f"unknown fault model {name!r}")
        if cls is MessageLoss:
            model: FaultModel = MessageLoss(
                params.pop("probability"), **params
            )
        elif cls is Duplication:
            model = Duplication(params.pop("probability"), **params)
        elif cls is Reorder:
            model = Reorder(params.pop("probability"), **params)
        elif cls is LinkFlap:
            model = LinkFlap(params.pop("a"), params.pop("b"), **params)
        elif cls is ScheduledCrash:
            victim = params.pop("victim")
            model = ScheduledCrash(
                victim,
                crash=(crash_actions or {}).get(victim),
                rejoin=(rejoin_actions or {}).get(victim),
                **params,
            )
        else:
            model = cls(**params)
        models.append(model)
    return models


def injector_from_spec(
    payload: dict,
    *,
    crash_actions: dict[str, Callable[[], None]] | None = None,
    rejoin_actions: dict[str, Callable[[], None]] | None = None,
) -> FaultInjector:
    """Build a :class:`FaultInjector` from :meth:`FaultInjector.spec`
    output.  Every host that rebuilds the same payload draws identical
    per-edge verdict streams — N worker processes each running a copy
    jointly behave like the simulator's single injector, because
    verdicts are consulted only at the sender's host and deliveries
    observed only at the recipient's."""
    return FaultInjector(
        *build_models(
            payload.get("models", ()),
            crash_actions=crash_actions,
            rejoin_actions=rejoin_actions,
        ),
        seed=payload.get("seed", 0),
    )
