"""Process-per-node deployment: true multi-core CQ evaluation.

The paper's coDB nodes are independent JXTA peers, each with its own
DBMS.  :class:`ProcessNetwork` makes that literal: a **driver** spawns
one OS **worker process per node** (:mod:`repro.runner.worker`), each
hosting its :class:`~repro.core.node.CoDBNode` — memory or SQLite
store — behind its own :class:`~repro.p2p.tcp.TcpNetwork` listening
socket.  Inter-node protocol traffic flows worker-to-worker over TCP
in the unchanged stable-JSON envelopes; concurrent update sessions
therefore evaluate their conjunctive queries on separate cores instead
of timeslicing one GIL (the threaded runner's ~1.15× at 4 origins
becomes real parallel speedup).

Driver/worker protocol (see :mod:`repro.runner.protocol`)
---------------------------------------------------------

Each worker is controlled through a ``multiprocessing`` pipe carrying
self-describing control frames — stable JSON by default, or the binary
restricted-pickle codec when the network was built with
``wire_codec="binary"`` (the same codec the p2p wire negotiates; on
the pipe no negotiation is needed since driver and worker run the
same package):

1. **Boot** — the driver sends ``configure`` (name, schema text,
   config, store kind, wire codec); the worker builds its transport +
   node and replies with its listening port.  The boot rounds are
   *pipelined*: every worker receives its ``configure`` the moment its
   process starts, and the driver collects the replies afterwards, so
   N workers initialise concurrently (~one worker's boot latency, not
   the sum).  After all workers bind, the driver fans the port map out
   via ``connect`` (the rendezvous step: peers keep addressing each
   other by peer id only), then ``load_facts`` and ``set_rules`` — the
   same send-all-then-collect discipline per round.
2. **Requests** — ``submit_update`` / ``submit_query`` return the bare
   request id minted by the worker; the driver wraps it in a proxy
   :class:`~repro.core.requests.RequestHandle` whose completion
   predicate reads only driver-side state.
3. **Completion bridging** — whenever a session finalizes at a worker
   (the §3 completion flood arriving there), the worker pushes a
   ``request_complete`` event.  When the *origin's* event arrives the
   update has globally quiesced (Dijkstra–Scholten root completion),
   so the driver probes every other worker once with
   ``session_status`` to learn who participated; the handle completes
   when the origin and every participating worker have reported done —
   the §4 statistics are final at that point, exactly as in the
   single-process network.  A background pump thread multiplexes all
   worker pipes, stamps handle completion in driver-observed order
   (what :func:`repro.core.requests.as_completed` streams), and
   notifies the control transport's progress condition — completion
   stays event-driven end to end, no sleep-polling.
4. **Failure** — a worker crash surfaces as EOF on its pipe: the
   driver marks it dead, fans ``peer_down`` out to the survivors
   (whose transports deliver the notification to their nodes through
   the normal inbox, closing links toward the corpse with
   ``closed_by="failure"``), fails pending calls, and re-evaluates
   every handle — in-flight requests complete instead of hanging.
5. **Shutdown** — ``shutdown`` asks each worker to stop its transport
   and exit; stragglers are terminated, then killed.  Workers are
   daemon processes besides, so no orphan can outlive the driver.

The ``submit``/``await``/``statistics`` surface mirrors
:class:`~repro.core.network.CoDBNetwork`, so differential tests drive
both interchangeably; handles from one :class:`ProcessNetwork` mix in
``as_completed`` / ``wait`` exactly like single-process ones.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import random
import shutil
import tempfile
import threading
import time
from dataclasses import asdict
from multiprocessing import connection as mpconnection
from collections.abc import Sequence
from typing import Any, Callable

from repro.core.network import UpdateOutcome
from repro.core.node import NodeConfig
from repro.core.requests import RequestHandle
from repro.core.rulefile import RuleFile
from repro.core.rules import CoordinationRule
from repro.core.statistics import UpdateReport, aggregate_reports
from repro.errors import ProtocolError, RequestTimeoutError
from repro.p2p.messages import CODECS
from repro.p2p.transport import Transport, TransportStats
from repro.relational.parser import parse_facts
from repro.relational.schema import DatabaseSchema
from repro.relational.values import Row, decode_row, encode_row
from repro.runner import protocol
from repro.runner.worker import worker_main

#: Default start method: ``forkserver`` where the platform supports it
#: — workers fork from a clean, single-threaded server process, so boot
#: skips a full interpreter + import cycle per worker (persistent-serve
#: deployments feel this most) while staying safe inside a threaded
#: driver (plain ``fork`` would inherit the driver's lock states).
#: Falls back to ``spawn`` (a pristine interpreter per worker)
#: elsewhere; the ``start_method=`` knob overrides either way.
DEFAULT_START_METHOD = (
    "forkserver"
    if "forkserver" in multiprocessing.get_all_start_methods()
    else "spawn"
)


class _ControlTransport(Transport):
    """The driver-side clock + progress condition the proxy handles use.

    Not a message transport: ``stats`` mirrors the *sum* of all worker
    transports' counters (refreshed from the totals every control
    frame carries), ``now()`` is driver wall time, and ``wait_for`` is
    the inherited event-driven progress wait that the pump thread
    notifies.
    """

    def __init__(self) -> None:
        super().__init__()
        self.stats = TransportStats()
        self._epoch = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._epoch

    def register(self, peer_id, handler) -> None:  # pragma: no cover
        raise ProtocolError("the control transport hosts no peers")

    def send(self, message) -> None:  # pragma: no cover
        raise ProtocolError("the control transport carries no messages")

    def run_until_idle(self, max_messages=None) -> int:
        return 0


class _WorkerProxy:
    """Driver-side face of one worker process."""

    def __init__(
        self, name: str, spec: dict[str, Any], pipe_codec: str = "json"
    ) -> None:
        self.name = name
        self.spec = spec
        self.pipe_codec = pipe_codec
        self.process: multiprocessing.process.BaseProcess | None = None
        self.conn = None
        self.alive = False
        self.port: int | None = None
        self.send_lock = threading.Lock()
        #: cmd_id -> Queue (sync call) or callable (async callback).
        self.pending: dict[int, Any] = {}

    def send_frame(self, frame: dict[str, Any]) -> None:
        data = protocol.encode_frame(frame, self.pipe_codec)
        with self.send_lock:
            self.conn.send_bytes(data)


class _TrackedRequest:
    """Driver bookkeeping for one in-flight proxy handle."""

    __slots__ = ("request_id", "kind", "origin", "handle", "probed")

    def __init__(
        self, request_id: str, kind: str, origin: str, handle: RequestHandle
    ) -> None:
        self.request_id = request_id
        self.kind = kind
        self.origin = origin
        self.handle = handle
        self.probed = False


class ProcessNetwork:
    """A coDB network with one OS process per node (module docstring).

    Build-then-start, like :class:`~repro.core.network.CoDBNetwork`::

        net = ProcessNetwork(seed=7)
        net.add_node("BZ", "person(name: str, city: str)",
                     facts="person('anna', 'Trento').")
        net.add_node("TN", "resident(name: str)")
        net.add_rule("TN:resident(n) <- BZ:person(n, c), c = 'Trento'")
        net.start()                       # spawns + wires the workers
        outcome = net.global_update("TN")
        net.stop()                        # or use it as a context manager

    ``submit_global_update`` / ``submit_query`` return
    :class:`~repro.core.requests.RequestHandle`\\ s compatible with
    :func:`~repro.core.requests.as_completed` and
    :func:`~repro.core.requests.wait`.  Queries must be given as text
    (they cross a process boundary).
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        config: NodeConfig | None = None,
        store: str = "memory",
        poll_timeout: float = 30.0,
        start_method: str | None = None,
        wire_codec: str = "json",
        restart_limit: int = 0,
        checkpoint_interval: int = 1,
        snapshot_dir: str | None = None,
        restart_backoff: float = 0.05,
    ) -> None:
        if wire_codec not in CODECS:
            raise ProtocolError(f"unknown wire codec {wire_codec!r}")
        self.seed = seed
        self.default_config = config
        self.default_store = store
        #: Codec for worker-to-worker TCP frames *and* the driver pipe.
        self.wire_codec = wire_codec
        self.poll_timeout = poll_timeout
        self.rule_file = RuleFile()
        self.transport = _ControlTransport()
        self._start_method = start_method or DEFAULT_START_METHOD
        self._rule_counter = 0
        self._specs: dict[str, dict[str, Any]] = {}
        self._workers: dict[str, _WorkerProxy] = {}
        self._cmd_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._started = False
        self._stopped = False
        self._stopping = False
        self._running = False
        self._pump_thread: threading.Thread | None = None
        #: request id -> set of worker names whose node finished it.
        self._completion: dict[str, set[str]] = {}
        #: request id -> workers confirmed (by probe) as non-participants.
        self._nonparticipants: dict[str, set[str]] = {}
        self._tracked: dict[str, _TrackedRequest] = {}
        #: Completed request ids (bounded FIFO): late completion events
        #: from slower workers are dropped instead of re-growing the
        #: per-request dicts forever.
        self._finished: dict[str, None] = {}
        self._worker_totals: dict[str, dict[str, int]] = {}
        #: ``fatal`` events pushed by workers (delivery-thread errors).
        self.worker_errors: list[tuple[str, str]] = []
        # -- supervision (crash-and-rejoin) ----------------------------
        #: Supervised restarts allowed per worker; 0 = dead stays dead.
        self.restart_limit = max(0, int(restart_limit))
        #: Checkpoint every N completed sessions at each worker.
        self.checkpoint_interval = max(1, int(checkpoint_interval))
        self.restart_backoff = restart_backoff
        self._restart_backoff_cap = 1.0
        self._restart_rng = random.Random(seed ^ 0x5EED)
        self._snapshot_dir_arg = snapshot_dir
        self._snapshot_dir: str | None = None
        self._snapshot_dir_owned = False
        self._ctx = None
        self._rules_payload: dict[str, Any] | None = None
        self._fault_spec: dict[str, Any] | None = None
        self._restarts: dict[str, int] = {}
        self._restart_threads: list[threading.Thread] = []
        #: update id -> workers that were down at some point while the
        #: update was in flight (kept bounded; read by _update_outcome
        #: so a post-restart assembly still reports the outage window).
        self._outage_peers: dict[str, set[str]] = {}
        #: Completed supervised restarts (diagnostics/benchmarks):
        #: ``{"worker", "attempt", "downtime"}`` per restart.
        self.outages: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add_node(
        self,
        name: str,
        schema: DatabaseSchema | str,
        *,
        facts: str | dict | None = None,
        config: NodeConfig | None = None,
        store: str | None = None,
    ) -> None:
        """Declare a node (the worker spawns at :meth:`start`)."""
        if self._started:
            raise ProtocolError("add_node after start() is not supported")
        if name in self._specs:
            raise ProtocolError(f"node {name!r} already exists")
        schema_text = schema if isinstance(schema, str) else str(schema)
        if isinstance(facts, str):
            facts = parse_facts(facts)
        node_config = config if config is not None else self.default_config
        self._specs[name] = {
            "schema": schema_text,
            "facts": {
                relation: [encode_row(tuple(row)) for row in rows]
                for relation, rows in (facts or {}).items()
            },
            "config": {} if node_config is None else asdict(node_config),
            "store": store if store is not None else self.default_store,
        }

    def add_rule(self, rule: str | CoordinationRule) -> CoordinationRule:
        if isinstance(rule, str):
            rule = CoordinationRule.from_text(f"r{self._rule_counter}", rule)
        self._rule_counter += 1
        for peer in (rule.target, rule.source):
            if peer not in self._specs:
                raise ProtocolError(
                    f"rule {rule.rule_id!r} references unknown node {peer!r}"
                )
        self.rule_file.add(rule)
        return rule

    def add_rules(self, rules: Sequence[str | CoordinationRule]) -> None:
        for rule in rules:
            self.add_rule(rule)

    @property
    def node_names(self) -> list[str]:
        return list(self._specs)

    def alive_workers(self) -> list[str]:
        return [name for name, w in self._workers.items() if w.alive]

    def worker_processes(self) -> list[multiprocessing.process.BaseProcess]:
        """The spawned processes (tests assert none survive stop())."""
        return [w.process for w in self._workers.values() if w.process]

    # ------------------------------------------------------------------
    # Start: spawn, exchange ports, load, wire rules
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise ProtocolError("network already started")
        if not self._specs:
            raise ProtocolError("no nodes declared")
        self._started = True
        ctx = multiprocessing.get_context(self._start_method)
        self._ctx = ctx
        if self.restart_limit > 0 or self._snapshot_dir_arg is not None:
            # Durable snapshots on: each worker checkpoints to its own
            # file here, and a supervised restart restores from it.
            if self._snapshot_dir_arg is None:
                self._snapshot_dir = tempfile.mkdtemp(prefix="codb-snap-")
                self._snapshot_dir_owned = True
            else:
                os.makedirs(self._snapshot_dir_arg, exist_ok=True)
                self._snapshot_dir = self._snapshot_dir_arg
        try:
            # Overlapped boot: each worker gets its ``configure`` the
            # moment its process starts, so all N initialise
            # concurrently; the replies (with the listening ports) are
            # collected afterwards.  The pump starts after wiring;
            # workers emit no events before traffic exists.
            boot_cmds: dict[str, int] = {}
            for name, spec in self._specs.items():
                worker = _WorkerProxy(name, spec, self.wire_codec)
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                worker.conn = parent_conn
                worker.process = ctx.Process(
                    target=worker_main,
                    args=(child_conn,),
                    name=f"codb-worker-{name}",
                    daemon=True,
                )
                worker.process.start()
                child_conn.close()
                worker.alive = True
                self._workers[name] = worker
                boot_cmds[name] = self._send_command(
                    worker, "configure", **self._configure_args(name)
                )
            for worker in self._workers.values():
                reply = self._collect_reply(
                    worker, boot_cmds[worker.name], "configure"
                )
                worker.port = int(reply["port"])
            ports = {
                name: worker.port for name, worker in self._workers.items()
            }
            rules_payload = self.rule_file.to_payload()
            self._rules_payload = rules_payload
            # Same pipelining for the wiring round: every worker runs
            # its connect/load/set_rules sequence concurrently (each
            # pipe preserves command order, so per-worker sequencing
            # holds without waiting between commands).
            wiring: list[tuple[_WorkerProxy, int, str]] = []
            for worker in self._workers.values():
                peers = {n: p for n, p in ports.items() if n != worker.name}
                wiring.append(
                    (worker,
                     self._send_command(worker, "connect", peers=peers),
                     "connect")
                )
                if worker.spec["facts"]:
                    wiring.append(
                        (worker,
                         self._send_command(
                             worker, "load_facts", facts=worker.spec["facts"]
                         ),
                         "load_facts")
                    )
                wiring.append(
                    (worker,
                     self._send_command(
                         worker, "set_rules", rules=rules_payload
                     ),
                     "set_rules")
                )
            for worker, cmd_id, op in wiring:
                self._collect_reply(worker, cmd_id, op)
        except BaseException:
            # Half-booted deployments must not leak processes: kill
            # whatever was spawned before re-raising.
            for worker in self._workers.values():
                process = worker.process
                if process is not None and process.is_alive():
                    process.kill()
                    process.join(timeout=2.0)
                worker.alive = False
            self._stopped = True
            raise
        self._running = True
        self._pump_thread = threading.Thread(
            target=self._pump, name="codb-driver-pump", daemon=True
        )
        self._pump_thread.start()

    def _snapshot_path(self, name: str) -> str | None:
        if self._snapshot_dir is None:
            return None
        return os.path.join(self._snapshot_dir, f"{name}.snapshot.json")

    def _configure_args(
        self, name: str, incarnation: int = 0
    ) -> dict[str, Any]:
        worker = self._workers[name]
        arguments: dict[str, Any] = {
            "name": name,
            "schema": worker.spec["schema"],
            "config": worker.spec["config"],
            "store": worker.spec["store"],
            "seed": self.seed,
            "wire_codec": self.wire_codec,
        }
        path = self._snapshot_path(name)
        if path is not None:
            arguments["snapshot_path"] = path
            arguments["checkpoint_interval"] = self.checkpoint_interval
            arguments["incarnation"] = incarnation
        return arguments

    # ------------------------------------------------------------------
    # Control-channel plumbing
    # ------------------------------------------------------------------

    def _worker(self, name: str) -> _WorkerProxy:
        try:
            worker = self._workers[name] if self._started else None
        except KeyError:
            worker = None
        if worker is None:
            if not self._started:
                raise ProtocolError("network not started")
            raise ProtocolError(f"unknown node {name!r}")
        if not worker.alive:
            raise ProtocolError(f"worker for node {name!r} is down")
        return worker

    def _send_command(
        self, worker: _WorkerProxy, op: str, **arguments: Any
    ) -> int:
        """Send one command without waiting; returns its cmd_id."""
        cmd_id = next(self._cmd_ids)
        worker.send_frame(protocol.command(op, cmd_id, **arguments))
        return cmd_id

    def _direct_call(
        self, worker: _WorkerProxy, op: str, **arguments: Any
    ) -> dict[str, Any]:
        """Boot-time request/reply on the caller's thread (no pump yet)."""
        cmd_id = self._send_command(worker, op, **arguments)
        return self._collect_reply(worker, cmd_id, op)

    def _collect_reply(
        self, worker: _WorkerProxy, cmd_id: int, op: str
    ) -> dict[str, Any]:
        """Boot-time reply wait for a pipelined :meth:`_send_command`."""
        deadline = time.monotonic() + self.poll_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not worker.conn.poll(remaining):
                raise RequestTimeoutError(
                    f"worker {worker.name!r} did not answer {op!r} "
                    f"within {self.poll_timeout}s"
                )
            try:
                frame = protocol.decode_frame(worker.conn.recv_bytes())
            except (EOFError, OSError) as exc:
                worker.alive = False
                raise ProtocolError(
                    f"worker {worker.name!r} died during {op!r}"
                ) from exc
            if frame.get("cmd_id") == cmd_id and frame["op"] in ("reply", "error"):
                self._note_totals(worker.name, frame.get("totals"))
                if frame["op"] == "error":
                    raise ProtocolError(
                        f"worker {worker.name!r} failed {op!r}: "
                        f"{frame.get('error_kind', '')} {frame.get('error', '')}"
                    )
                return frame
            self._handle_async_frame(worker, frame)

    def _call(
        self,
        worker: _WorkerProxy,
        op: str,
        timeout: float | None = None,
        **arguments: Any,
    ) -> dict[str, Any]:
        """Synchronous command once the pump runs (any non-pump thread)."""
        if threading.current_thread() is self._pump_thread:
            raise ProtocolError(
                "synchronous control calls are not allowed on the pump thread"
            )
        if not worker.alive:
            raise ProtocolError(f"worker for node {worker.name!r} is down")
        cmd_id = next(self._cmd_ids)
        answer: queue.Queue = queue.Queue(maxsize=1)
        with self._lock:
            worker.pending[cmd_id] = answer
        try:
            worker.send_frame(protocol.command(op, cmd_id, **arguments))
        except (OSError, ValueError) as exc:
            with self._lock:
                worker.pending.pop(cmd_id, None)
            raise ProtocolError(f"worker {worker.name!r} unreachable") from exc
        try:
            frame = answer.get(
                timeout=timeout if timeout is not None else self.poll_timeout
            )
        except queue.Empty:
            with self._lock:
                worker.pending.pop(cmd_id, None)
            raise RequestTimeoutError(
                f"worker {worker.name!r} did not answer {op!r} within "
                f"{timeout if timeout is not None else self.poll_timeout}s"
            ) from None
        if frame["op"] == "error":
            raise ProtocolError(
                f"worker {worker.name!r} failed {op!r}: "
                f"{frame.get('error_kind', '')} {frame.get('error', '')}"
            )
        return frame

    def _call_many(
        self,
        workers: list[_WorkerProxy],
        op: str,
        timeout: float | None = None,
        **arguments: Any,
    ) -> dict[str, dict[str, Any]]:
        """Pipelined request/reply fan-out: issue *op* to every worker
        before collecting any reply, so a network-wide probe costs one
        worker round-trip instead of N sequential ones (the workers
        process their commands concurrently while the driver waits)."""
        if threading.current_thread() is self._pump_thread:
            raise ProtocolError(
                "synchronous control calls are not allowed on the pump thread"
            )
        pending: list[tuple[_WorkerProxy, int, queue.Queue]] = []
        for worker in workers:
            if not worker.alive:
                continue
            cmd_id = next(self._cmd_ids)
            answer: queue.Queue = queue.Queue(maxsize=1)
            with self._lock:
                worker.pending[cmd_id] = answer
            try:
                worker.send_frame(protocol.command(op, cmd_id, **arguments))
            except (OSError, ValueError) as exc:
                with self._lock:
                    worker.pending.pop(cmd_id, None)
                raise ProtocolError(
                    f"worker {worker.name!r} unreachable"
                ) from exc
            pending.append((worker, cmd_id, answer))
        wait = timeout if timeout is not None else self.poll_timeout
        deadline = time.monotonic() + wait
        replies: dict[str, dict[str, Any]] = {}
        for worker, cmd_id, answer in pending:
            try:
                frame = answer.get(
                    timeout=max(0.0, deadline - time.monotonic())
                )
            except queue.Empty:
                with self._lock:
                    worker.pending.pop(cmd_id, None)
                raise RequestTimeoutError(
                    f"worker {worker.name!r} did not answer {op!r} "
                    f"within {wait}s"
                ) from None
            if frame["op"] == "error":
                raise ProtocolError(
                    f"worker {worker.name!r} failed {op!r}: "
                    f"{frame.get('error_kind', '')} {frame.get('error', '')}"
                )
            replies[worker.name] = frame
        return replies

    def _cast(
        self,
        worker: _WorkerProxy,
        op: str,
        callback: Callable[[dict[str, Any]], None] | None = None,
        **arguments: Any,
    ) -> None:
        """Fire-and-forget command; *callback* (if any) runs on the pump
        thread with the reply frame (or an error frame on worker death)."""
        if not worker.alive:
            return
        cmd_id = next(self._cmd_ids)
        with self._lock:
            worker.pending[cmd_id] = callback
        try:
            worker.send_frame(protocol.command(op, cmd_id, **arguments))
        except (OSError, ValueError):
            with self._lock:
                worker.pending.pop(cmd_id, None)

    # ------------------------------------------------------------------
    # The pump: multiplex worker pipes, bridge events into handles
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        while self._running:
            conns = {
                worker.conn: worker
                for worker in self._workers.values()
                if worker.alive
            }
            if not conns:
                time.sleep(0.05)
                continue
            try:
                ready = mpconnection.wait(list(conns), timeout=0.2)
            except OSError:
                continue
            progressed = False
            for conn in ready:
                worker = conns[conn]
                try:
                    frame = protocol.decode_frame(conn.recv_bytes())
                except (EOFError, OSError):
                    self._on_worker_crash(worker)
                    progressed = True
                    continue
                # The pump must survive any single bad frame (version
                # skew, malformed event, raising handle callback): a
                # dead pump would strand every handle and every _call.
                try:
                    self._handle_async_frame(worker, frame)
                except Exception as exc:  # noqa: BLE001 - recorded
                    self.worker_errors.append((worker.name, repr(exc)))
                progressed = True
            if progressed:
                try:
                    self._sync_handles()
                except Exception as exc:  # noqa: BLE001 - recorded
                    self.worker_errors.append(("driver", repr(exc)))

    def _handle_async_frame(
        self, worker: _WorkerProxy, frame: dict[str, Any]
    ) -> None:
        self._note_totals(worker.name, frame.get("totals"))
        op = frame["op"]
        if op in ("reply", "error"):
            with self._lock:
                target = worker.pending.pop(frame.get("cmd_id"), None)
            if isinstance(target, queue.Queue):
                target.put(frame)
            elif callable(target):
                target(frame)
            return
        if op == "event":
            name = frame.get("event")
            if name == "request_complete":
                request_id = frame["request_id"]
                with self._lock:
                    if request_id in self._finished:
                        return  # late flood tail of a completed request
                    self._completion.setdefault(request_id, set()).add(
                        worker.name
                    )
                self._maybe_probe(request_id)
            elif name == "fatal":
                self.worker_errors.append((worker.name, frame.get("error", "")))
            return
        raise ProtocolError(f"unexpected control frame from worker: {frame!r}")

    def _note_totals(self, name: str, totals: dict[str, int] | None) -> None:
        if not totals:
            return
        with self._lock:
            self._worker_totals[name] = totals
            stats = self.transport.stats
            stats.messages_sent = sum(
                t.get("messages_sent", 0) for t in self._worker_totals.values()
            )
            stats.bytes_sent = sum(
                t.get("bytes_sent", 0) for t in self._worker_totals.values()
            )
            stats.wire_bytes_sent = sum(
                t.get("wire_bytes_sent", 0)
                for t in self._worker_totals.values()
            )
            stats.messages_delivered = sum(
                t.get("messages_delivered", 0)
                for t in self._worker_totals.values()
            )

    def _sync_handles(self) -> None:
        for tracked in list(self._tracked.values()):
            tracked.handle.done()  # stamps completion at first true
        self.transport.notify_progress()

    def _on_worker_crash(self, worker: _WorkerProxy) -> None:
        """EOF on a worker pipe: the node's process died."""
        worker.alive = False
        try:
            worker.conn.close()
        except OSError:
            pass
        with self._lock:
            pending = list(worker.pending.items())
            worker.pending.clear()
        error = {
            "op": "error",
            "cmd_id": 0,
            "error": f"worker {worker.name!r} died",
            "error_kind": "WorkerDied",
        }
        for _cmd_id, target in pending:
            if isinstance(target, queue.Queue):
                target.put(error)
            elif callable(target):
                target(error)
        if self._stopping:
            return
        # Remember the outage for every update in flight right now:
        # even if the worker restarts before the handle assembles its
        # outcome, the report must still say this peer was unreachable
        # during the session (the handle settles as ``partial``).
        with self._lock:
            for tracked in self._tracked.values():
                if tracked.kind == "update":
                    self._outage_peers.setdefault(
                        tracked.request_id, set()
                    ).add(worker.name)
            while len(self._outage_peers) > 4096:
                self._outage_peers.pop(next(iter(self._outage_peers)))
        # Failure-detector fan-out: every survivor's transport delivers
        # a peer_down for the corpse through its node's normal inbox.
        for survivor in self._workers.values():
            if survivor.alive:
                self._cast(survivor, "peer_down", peer=worker.name)
        # Requests whose origin died can now resolve via probing; the
        # dead worker itself is excluded from every completion predicate.
        for tracked in list(self._tracked.values()):
            if tracked.kind == "update":
                self._maybe_probe(tracked.request_id)
        self._sync_handles()
        # Supervised restart: bring the corpse back from its snapshot
        # (off the pump thread — the restart does synchronous pipe
        # round-trips).  ``restart_limit=0`` keeps dead-stays-dead.
        if (
            self.restart_limit > 0
            and self._restarts.get(worker.name, 0) < self.restart_limit
        ):
            thread = threading.Thread(
                target=self._supervised_restart,
                args=(worker,),
                name=f"codb-restart-{worker.name}",
                daemon=True,
            )
            self._restart_threads.append(thread)
            thread.start()

    def _supervised_restart(self, worker: _WorkerProxy) -> None:
        """Restart one crashed worker: backoff, respawn, restore, rejoin."""
        name = worker.name
        attempt = self._restarts.get(name, 0) + 1
        self._restarts[name] = attempt
        went_down = time.monotonic()
        backoff = min(
            self._restart_backoff_cap,
            self.restart_backoff * (2 ** (attempt - 1)),
        )
        time.sleep(backoff * (0.5 + self._restart_rng.random() / 2))
        if self._stopping or not self._running:
            return
        try:
            self._respawn(worker, attempt)
        except Exception as exc:  # noqa: BLE001 - recorded, not fatal
            self.worker_errors.append((name, f"restart failed: {exc!r}"))
            worker.alive = False
            process = worker.process
            if process is not None and process.is_alive():
                process.kill()
            return
        self.outages.append(
            {
                "worker": name,
                "attempt": attempt,
                "downtime": time.monotonic() - went_down,
            }
        )
        self._sync_handles()

    def _respawn(self, worker: _WorkerProxy, attempt: int) -> None:
        """The restart sequence proper.  Runs on a restart thread while
        ``worker.alive`` is still False, so the pump ignores this pipe
        and the boot-style direct calls below own it exclusively.

        Order matters: survivors must learn the new port (``connect``
        overwrites and purges the stale one) *before* the ``rejoin``
        handshake makes the restarted node talk to them — otherwise
        their acks would chase a dead socket.  Fault models are NOT
        re-installed: a fresh ScheduledCrash copy would count
        deliveries and kill the victim all over again.
        """
        name = worker.name
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn,),
            name=f"codb-worker-{name}-r{attempt}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.conn = parent_conn
        worker.process = process
        reply = self._direct_call(
            worker, "configure", **self._configure_args(name, attempt)
        )
        worker.port = int(reply["port"])
        peers = {
            other.name: other.port
            for other in self._workers.values()
            if other.name != name and other.port is not None
        }
        self._direct_call(worker, "connect", peers=peers)
        self._direct_call(
            worker, "set_rules", rules=self._rules_payload or {"rules": []}
        )
        survivors = [
            other for other in self._workers.values()
            if other.alive and other.name != name
        ]
        if survivors:
            self._call_many(survivors, "connect", peers={name: worker.port})
        self._direct_call(worker, "rejoin")
        worker.alive = True

    # ------------------------------------------------------------------
    # Completion predicates (driver-state only: the pump calls these)
    # ------------------------------------------------------------------

    def _maybe_probe(self, request_id: str) -> None:
        """Once the origin finished (or died), ask every other worker
        whether it participated — resolving the completion predicate's
        unknowns.  Runs at most once per update."""
        with self._lock:
            tracked = self._tracked.get(request_id)
            if tracked is None or tracked.kind != "update" or tracked.probed:
                return
            origin_worker = self._workers.get(tracked.origin)
            origin_settled = (
                origin_worker is None
                or not origin_worker.alive
                or tracked.origin in self._completion.get(request_id, ())
                or tracked.origin in self._outage_peers.get(request_id, ())
            )
            if not origin_settled:
                return
            tracked.probed = True
        for worker in self._workers.values():
            if worker.name == tracked.origin or not worker.alive:
                continue
            self._cast(
                worker,
                "session_status",
                callback=(
                    lambda frame, name=worker.name: self._on_probe_reply(
                        request_id, name, frame
                    )
                ),
                request_id=request_id,
                kind="update",
            )

    def _on_probe_reply(
        self, request_id: str, worker_name: str, frame: dict[str, Any]
    ) -> None:
        if frame["op"] == "error":
            return  # dead workers are excluded by the alive check
        with self._lock:
            if frame.get("done"):
                self._completion.setdefault(request_id, set()).add(worker_name)
            elif not frame.get("participated"):
                self._nonparticipants.setdefault(request_id, set()).add(
                    worker_name
                )
            # else: participating and unfinished — its own
            # request_complete event resolves it.
        self._sync_handles()

    def _update_done(self, request_id: str, origin: str) -> bool:
        completed = self._completion.get(request_id, ())
        nonparticipants = self._nonparticipants.get(request_id, ())
        # A worker that crashed while this update was in flight is
        # excluded from the predicate even after a supervised restart
        # revived it: the new incarnation holds no session state for
        # the update and would otherwise stall the handle forever.
        outage = self._outage_peers.get(request_id, ())
        origin_worker = self._workers.get(origin)
        if (
            origin_worker is not None
            and origin_worker.alive
            and origin not in completed
            and origin not in outage
        ):
            return False
        tracked = self._tracked.get(request_id)
        if tracked is not None and not tracked.probed:
            return False  # participant set not yet resolved
        return all(
            worker.name in completed
            or worker.name in nonparticipants
            or worker.name == origin
            or worker.name in outage
            for worker in self._workers.values()
            if worker.alive
        )

    def _query_done(self, request_id: str, origin: str) -> bool:
        origin_worker = self._workers.get(origin)
        if origin_worker is None or not origin_worker.alive:
            return True  # completes; result() surfaces the failure
        return origin in self._completion.get(request_id, ())

    # ------------------------------------------------------------------
    # Global updates
    # ------------------------------------------------------------------

    def submit_global_update(
        self, origin: str, *, tenant: str = ""
    ) -> RequestHandle:
        """Submit one global update from *origin*; returns its proxy
        handle (same semantics as
        :meth:`repro.core.network.CoDBNetwork.submit_global_update`).
        *tenant* tags the submission in the worker node's statistics."""
        worker = self._worker(origin)
        started_at = self.transport.now()
        messages_before = self.transport.stats.messages_sent
        bytes_before = self.transport.stats.bytes_sent
        update_id = self._call(worker, "submit_update", tenant=tenant)[
            "request_id"
        ]
        handle = RequestHandle(
            request_id=update_id,
            kind="update",
            origin=origin,
            transport=self.transport,
            is_done=lambda: self._update_done(update_id, origin),
            assemble=self._update_outcome,
            try_cancel=lambda: self._cancel(origin, "update", update_id),
            started_at=started_at,
            messages_before=messages_before,
            bytes_before=bytes_before,
            tenant=tenant,
        )
        self._track(handle)
        return handle

    def start_global_updates(
        self, origins: Sequence[str]
    ) -> list[RequestHandle]:
        """Submit one update per origin back-to-back, without waiting —
        over separate processes the sessions run truly in parallel."""
        return [self.submit_global_update(origin) for origin in origins]

    def global_update(self, origin: str) -> UpdateOutcome:
        """Blocking wrapper over :meth:`submit_global_update`."""
        return self.submit_global_update(origin).result(self.poll_timeout)

    def await_all(
        self, handles: Sequence[RequestHandle]
    ) -> list[UpdateOutcome]:
        """Await every handle; returns outcomes in handle order."""
        return [handle.result(self.poll_timeout) for handle in handles]

    def _track(self, handle: RequestHandle) -> None:
        tracked = _TrackedRequest(
            handle.request_id, handle.kind, handle.origin, handle
        )
        with self._lock:
            self._tracked[handle.request_id] = tracked
        handle.add_done_callback(self._on_handle_done)
        if handle.kind == "update":
            # The origin may already have finished (tiny networks
            # complete before the driver even registers the handle).
            self._maybe_probe(handle.request_id)
        handle.done()

    def _on_handle_done(self, handle: RequestHandle) -> None:
        """Release the driver's per-request state once a handle
        completes; remember the id (bounded) so late completion events
        from slower workers are dropped, not re-accumulated."""
        with self._lock:
            self._tracked.pop(handle.request_id, None)
            self._completion.pop(handle.request_id, None)
            self._nonparticipants.pop(handle.request_id, None)
            self._finished[handle.request_id] = None
            while len(self._finished) > 4096:
                self._finished.pop(next(iter(self._finished)))

    def _cancel(self, origin: str, kind: str, request_id: str) -> bool:
        try:
            worker = self._worker(origin)
        except ProtocolError:
            return False
        reply = self._call(worker, "cancel", kind=kind, request_id=request_id)
        return bool(reply.get("cancelled"))

    def _update_outcome(self, handle: RequestHandle) -> UpdateOutcome:
        """Aggregate the per-worker §4 reports into the caller-facing
        outcome (the super-peer aggregation, over the control channel)."""
        update_id = handle.request_id
        replies = self._call_many(
            list(self._workers.values()), "report", request_id=update_id
        )
        reports: list[UpdateReport] = []
        for frame in replies.values():
            payload = frame.get("report")
            if payload is not None:
                reports.append(UpdateReport.from_payload(payload))
        origin = handle.origin or (reports[0].origin if reports else "")
        # Crashed workers can no longer answer the control channel:
        # every dead participant is, by construction, a peer this
        # update could not have covered in full — merged with the
        # survivors' own local views by aggregate_reports.
        dead = sorted(
            set(name for name, w in self._workers.items() if not w.alive)
            | {p for report in reports for p in report.unreachable_peers}
            | self._outage_peers.get(update_id, set())
        )
        return UpdateOutcome(
            update_id=update_id,
            origin=origin,
            report=aggregate_reports(
                update_id, origin, reports, unreachable_peers=dead
            ),
            wall_time=handle.finished_at - handle.started_at,
            transport_messages=handle.messages_after - handle.messages_before,
            transport_bytes=handle.bytes_after - handle.bytes_before,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def submit_query(
        self,
        node_name: str,
        query: str,
        *,
        mode: str = "network",
        persist: bool = True,
        cache: bool | None = None,
        tenant: str = "",
    ) -> RequestHandle:
        """Submit *query* (text) at *node_name*; returns its handle.

        ``cache`` overrides the worker node's ``NodeConfig.answer_cache``
        for this one query (``None`` inherits the config); *tenant*
        tags the submission in the worker node's statistics."""
        if not isinstance(query, str):
            raise ProtocolError(
                "ProcessNetwork queries must be text (they cross a "
                "process boundary)"
            )
        worker = self._worker(node_name)
        if mode == "local":
            rows = self.query(node_name, query, mode="local")
            handle = RequestHandle(
                request_id=f"local-{next(self._cmd_ids)}",
                kind="query",
                origin=node_name,
                transport=self.transport,
                is_done=lambda: True,
                assemble=lambda _handle: rows,
                started_at=self.transport.now(),
                messages_before=self.transport.stats.messages_sent,
                bytes_before=self.transport.stats.bytes_sent,
                tenant=tenant,
            )
            handle.done()
            return handle
        if mode != "network":
            raise ProtocolError(f"unknown query mode {mode!r}")
        started_at = self.transport.now()
        messages_before = self.transport.stats.messages_sent
        bytes_before = self.transport.stats.bytes_sent
        query_id = self._call(
            worker,
            "submit_query",
            query=query,
            persist=persist,
            cache=cache,
            tenant=tenant,
        )["request_id"]
        handle = RequestHandle(
            request_id=query_id,
            kind="query",
            origin=node_name,
            transport=self.transport,
            is_done=lambda: self._query_done(query_id, node_name),
            assemble=lambda _handle: self._query_answer(node_name, query_id),
            try_cancel=lambda: self._cancel(node_name, "query", query_id),
            started_at=started_at,
            messages_before=messages_before,
            bytes_before=bytes_before,
            tenant=tenant,
        )
        self._track(handle)
        return handle

    def _query_answer(self, origin: str, query_id: str) -> list[Row]:
        worker = self._worker(origin)  # raises if the origin died
        rows = self._call(worker, "query_answer", request_id=query_id)["rows"]
        if rows is None:
            raise ProtocolError(
                f"query {query_id!r} has no answer at {origin!r}"
            )
        return [decode_row(row) for row in rows]

    def query(
        self,
        node_name: str,
        query: str,
        *,
        mode: str = "local",
        persist: bool = True,
        cache: bool | None = None,
    ) -> list[Row]:
        """Answer *query* at *node_name* (blocking wrapper)."""
        if not isinstance(query, str):
            raise ProtocolError(
                "ProcessNetwork queries must be text (they cross a "
                "process boundary)"
            )
        if mode == "local":
            worker = self._worker(node_name)
            rows = self._call(worker, "query_local", query=query)["rows"]
            return [decode_row(row) for row in rows]
        if mode != "network":
            raise ProtocolError(f"unknown query mode {mode!r}")
        handle = self.submit_query(
            node_name, query, mode="network", persist=persist, cache=cache
        )
        return handle.result(self.poll_timeout)

    # ------------------------------------------------------------------
    # Statistics & snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, list[Row]]]:
        """``{node: {relation: sorted rows}}`` across alive workers."""
        replies = self._call_many(list(self._workers.values()), "snapshot")
        return {
            name: {
                relation: [decode_row(row) for row in rows]
                for relation, rows in frame["relations"].items()
            }
            for name, frame in replies.items()
        }

    def lifetime_totals(self) -> dict[str, dict]:
        """Per-node lifetime aggregates, collected over control pipes
        (pipelined: all workers are probed before any reply is read)."""
        replies = self._call_many(
            list(self._workers.values()), "lifetime_totals"
        )
        return {
            name: frame["node_totals"] for name, frame in replies.items()
        }

    def total_rows(self) -> int:
        return sum(
            sum(len(rows) for rows in relations.values())
            for relations in self.snapshot().values()
        )

    # ------------------------------------------------------------------
    # Failure injection & teardown
    # ------------------------------------------------------------------

    def crash_worker(self, name: str) -> None:
        """Kill a worker process outright (chaos/testing): the pump
        detects the EOF and runs the failure protocol."""
        worker = self._worker(name)
        worker.process.kill()

    def install_faults(self, injector) -> None:
        """Install a fault-model composition on every worker transport.

        *injector* is a :class:`~repro.p2p.faults.FaultInjector` (or a
        ``spec()`` payload).  Each worker rebuilds the injector from
        the spec on its own :class:`~repro.p2p.tcp.TcpNetwork`; the
        per-edge deterministic draw streams make the N copies agree,
        so a verdict consulted at the sender's host matches what a
        single shared injector would have said.  A
        :class:`~repro.p2p.faults.ScheduledCrash` victim SIGKILLs its
        own process, exercising the supervised-restart path for real.
        """
        spec = injector.spec() if hasattr(injector, "spec") else dict(injector)
        self._fault_spec = spec
        self._call_many(
            [w for w in self._workers.values() if w.alive],
            "install_faults",
            spec=spec,
        )

    def drain(self, timeout: float | None = None) -> None:
        """Block until every tracked in-flight request has completed.

        The persistent-serve shutdown path (``repro serve`` handling
        SIGTERM): stop admitting, drain, then :meth:`stop`.  Completion
        stays event-driven — the pump thread's progress notifications
        wake this wait.  Raises
        :class:`~repro.errors.RequestTimeoutError` when *timeout*
        (default: ``poll_timeout``) elapses with requests still in
        flight."""
        self.transport.wait_for(
            lambda: not self._tracked,
            self.poll_timeout if timeout is None else timeout,
            description="process-network drain",
        )

    def stop(self) -> None:
        """Shut every worker down; terminate stragglers; no orphans."""
        if self._stopped or not self._started:
            self._stopped = True
            return
        self._stopped = True
        self._stopping = True
        for thread in self._restart_threads:
            thread.join(timeout=2.0)
        for worker in self._workers.values():
            if not worker.alive:
                continue
            try:
                self._call(worker, "shutdown", timeout=5.0)
            except (ProtocolError, RequestTimeoutError):
                pass
        self._running = False
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=2.0)
        for worker in self._workers.values():
            process = worker.process
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - hard stragglers
                process.kill()
                process.join(timeout=2.0)
            worker.alive = False
            try:
                worker.conn.close()
            except OSError:
                pass
        if self._snapshot_dir_owned and self._snapshot_dir is not None:
            shutil.rmtree(self._snapshot_dir, ignore_errors=True)
        self.transport.notify_progress()

    def __enter__(self) -> "ProcessNetwork":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
