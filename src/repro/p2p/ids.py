"""Identifier authority: peer, pipe, message and update ids.

JXTA gives every resource an opaque, globally unique id in an
IP-independent name space; coDB additionally "use[s] JXTA to generate
global updates identifiers" (§2).  We reproduce that with a seeded
:class:`IdAuthority` per network so ids are unique *and* runs are
reproducible.
"""

from __future__ import annotations

from repro._util import IdGenerator


class IdAuthority:
    """Mints the ids used across one network.

    A single authority is owned by the network object (simulated) or
    derived from the peer name (TCP), so two networks never share ids
    but one network's run is deterministic.
    """

    def __init__(self, seed: int = 0, namespace: str = "codb") -> None:
        self._generator = IdGenerator(seed, namespace)

    def peer_id(self) -> str:
        return self._generator.next_id("peer")

    def pipe_id(self) -> str:
        return self._generator.next_id("pipe")

    def message_id(self) -> str:
        return self._generator.next_id("msg")

    def update_id(self) -> str:
        """A global-update identifier — "all global update request
        messages carry the same unique identifier generated at the node
        which started the global update" (§2)."""
        return self._generator.next_id("update")

    def query_id(self) -> str:
        return self._generator.next_id("query")
