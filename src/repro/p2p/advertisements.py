"""Resource advertisements.

JXTA resources (peers, pipes, groups, services) are described by
advertisements that peers publish and discover "in a distributed,
decentralised environment" (§2).  coDB needs two kinds: peer
advertisements (who exists, what schema they export) and pipe
advertisements (how to reach them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class PeerAdvertisement:
    """Announces a peer: id, human name, exported schema summary."""

    peer_id: str
    name: str
    #: Relation name -> arity, for the exported part of the schema
    #: (the DBS) — enough for other peers to author rules against it.
    exported_relations: tuple[tuple[str, int], ...] = ()
    #: Extra attributes (the demo shows e.g. discovered-by info).
    properties: tuple[tuple[str, str], ...] = ()

    def to_payload(self) -> dict[str, Any]:
        return {
            "peer_id": self.peer_id,
            "name": self.name,
            "exported_relations": [list(item) for item in self.exported_relations],
            "properties": [list(item) for item in self.properties],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "PeerAdvertisement":
        return cls(
            peer_id=payload["peer_id"],
            name=payload["name"],
            exported_relations=tuple(
                (str(name), int(arity))
                for name, arity in payload.get("exported_relations", ())
            ),
            properties=tuple(
                (str(k), str(v)) for k, v in payload.get("properties", ())
            ),
        )

    def property(self, key: str) -> str | None:
        """The value of property *key*, or ``None``."""
        for name, value in self.properties:
            if name == key:
                return value
        return None

    def supports_answer_cache(self) -> bool:
        """Whether the advertised peer runs the epoch-keyed answer
        cache (the ``answer_cache`` property; absent means off — old
        peers never advertised it)."""
        return self.property("answer_cache") == "on"


@dataclass(frozen=True)
class PipeAdvertisement:
    """Announces a pipe between two peers."""

    pipe_id: str
    from_peer: str
    to_peer: str

    def to_payload(self) -> dict[str, Any]:
        return {
            "pipe_id": self.pipe_id,
            "from_peer": self.from_peer,
            "to_peer": self.to_peer,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "PipeAdvertisement":
        return cls(
            pipe_id=payload["pipe_id"],
            from_peer=payload["from_peer"],
            to_peer=payload["to_peer"],
        )
