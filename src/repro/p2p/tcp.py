"""Real TCP transport: the protocol over actual sockets.

Proves the coDB protocol stack is not simulator-bound (experiment
E13).  Design:

* Every registered peer gets a listening socket on ``127.0.0.1``
  (ephemeral port) and a *delivery thread* that executes its handler
  one message at a time — the same actor discipline as the simulator.
* ``send`` frames the message (4-byte big-endian length prefix + JSON
  body) over a cached outbound connection per (sender, recipient)
  pair, giving per-pair FIFO just like a JXTA pipe.  ``TCP_NODELAY``
  is set on every socket (accept and connect paths): protocol
  messages are small and often sent in write-write bursts (a
  ``query_result`` followed by its ``link_closed``), exactly the
  pattern Nagle's algorithm would stall on a delayed ACK.
* a global in-flight counter is incremented at ``send`` and
  decremented after the recipient's handler returns, so quiescence
  means *handled*, not merely delivered.  ``run_until_idle`` and
  ``wait_for`` block on the transport's progress condition, which
  every delivery loop notifies after handling a message — drivers are
  woken event-driven, never by sleep-polling.

The port registry doubles as the rendezvous service: peers address
each other by peer id only, never by host/port — "IP independent
naming space" (§2).

Frames are self-describing (:mod:`repro.p2p.messages`): stable JSON
by default, or the binary restricted-pickle codec once a connection
has negotiated it.  A ``TcpNetwork(wire_codec="binary")`` sender opens
every new outbound connection with a codec *offer* frame; the
receiving side answers with an *ack* naming the codec it accepts —
binary only when it was constructed with ``wire_codec="binary"``
itself, JSON otherwise — and the sender frames all subsequent
messages on that connection accordingly.  The ack is the only bytes
ever written back on these one-way sockets, and it happens strictly
before any protocol message flows, so per-pair FIFO is unaffected.
JSON remains the default and the fallback whenever negotiation cannot
complete, so mixed-version and mixed-configuration deployments
interoperate.  Whatever the codec, the §4 statistics count stable-JSON
sizes (:meth:`~repro.p2p.messages.Message.size_bytes`); the actual
framed byte count is tracked separately as ``stats.wire_bytes_sent``.

Multi-process deployments (:mod:`repro.p2p.procs`) run one
``TcpNetwork`` per worker process, hosting that worker's single node.
The driver exchanges listening ports and installs them here as
**remote peers** (:meth:`TcpNetwork.add_remote_peer`): sends to a
remote peer go over the same wire format to the other process's
listening socket, and arrivals *from* a peer this transport does not
host are counted into the in-flight window at enqueue time (their
send-side increment happened in another process).  The protocol
layers cannot tell a remote peer from a local one.
"""

from __future__ import annotations

import json
import random
import socket
import struct
import threading
import time
from queue import Empty, Queue

from repro._util import stable_json
from repro.errors import (
    ProtocolError,
    TransportStoppedError,
    UnknownPeerError,
)
from repro.p2p.messages import CODECS, FRAME_ACK, FRAME_OFFER, Message
from repro.p2p.transport import MessageHandler, ThreadSafeTransportStats, Transport

_LENGTH = struct.Struct(">I")


def _frame(body: bytes) -> bytes:
    return _LENGTH.pack(len(body)) + body


def _read_exact(connection: socket.socket, count: int) -> bytes | None:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = connection.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _PeerServer:
    """Listening socket + delivery worker for one peer."""

    def __init__(self, network: "TcpNetwork", peer_id: str, handler: MessageHandler) -> None:
        self.network = network
        self.peer_id = peer_id
        self.handler = handler
        self.inbox: Queue[Message | None] = Queue()
        self.socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.socket.bind(("127.0.0.1", 0))
        self.socket.listen(16)
        self.port = self.socket.getsockname()[1]
        self._running = True
        self.accept_thread = threading.Thread(
            target=self._accept_loop, name=f"accept-{peer_id}", daemon=True
        )
        self.delivery_thread = threading.Thread(
            target=self._delivery_loop, name=f"deliver-{peer_id}", daemon=True
        )
        self.accept_thread.start()
        self.delivery_thread.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                connection, _ = self.socket.accept()
            except OSError:
                return
            if self.network.nodelay:
                try:
                    connection.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                    )
                except OSError:  # pragma: no cover - platform quirk
                    pass
            thread = threading.Thread(
                target=self._receive_loop,
                args=(connection,),
                name=f"recv-{self.peer_id}",
                daemon=True,
            )
            thread.start()

    def _receive_loop(self, connection: socket.socket) -> None:
        with connection:
            while self._running:
                try:
                    header = _read_exact(connection, _LENGTH.size)
                    if header is None:
                        return
                    (length,) = _LENGTH.unpack(header)
                    body = _read_exact(connection, length)
                    if body is None:
                        return
                except OSError:
                    return
                tag = body[:1]
                if tag == FRAME_OFFER:
                    # Codec negotiation: answer on the same connection
                    # (the only bytes ever sent backwards here) and
                    # keep these frames out of the protocol statistics.
                    self._answer_offer(connection, body)
                    continue
                if tag == FRAME_ACK:  # stray ack: not a protocol frame
                    continue
                message = Message.from_frame(body)
                # A message from a peer this transport does not host
                # was counted in flight by ANOTHER process's send;
                # enter it into the local window here so quiescence
                # still means "every delivered message handled".
                if message.sender not in self.network._servers:
                    with self.network._inflight_lock:
                        self.network._inflight += 1
                self.inbox.put(message)

    def _answer_offer(self, connection: socket.socket, body: bytes) -> None:
        try:
            offered = json.loads(body[1:].decode("utf-8")).get("codecs", [])
        except (ValueError, AttributeError):
            offered = []
        codec = (
            "binary"
            if "binary" in offered and self.network.wire_codec == "binary"
            else "json"
        )
        ack = FRAME_ACK + stable_json({"codec": codec}).encode("utf-8")
        try:
            connection.sendall(_frame(ack))
        except OSError:  # sender is gone; its retry renegotiates
            pass

    def _delivery_loop(self) -> None:
        while True:
            try:
                message = self.inbox.get(timeout=0.2)
            except Empty:
                if not self._running:
                    return
                continue
            if message is None:
                return
            try:
                self.network.stats.record_delivery()
                self.handler(message)
                faults = self.network.faults
                if faults is not None:
                    faults.after_delivery(message)
            finally:
                with self.network._inflight_lock:
                    self.network._inflight -= 1
                # Wake drivers blocked in wait_for/run_until_idle: the
                # handled message may have completed what they await.
                self.network.notify_progress()

    def stop(self) -> None:
        self._running = False
        self.inbox.put(None)
        # shutdown() before close(): close() alone does not interrupt
        # the accept thread's blocked accept(2), and the kernel keeps
        # the listening socket alive (and accepting!) while that
        # syscall holds it — shutdown revokes the listening state
        # immediately, so post-stop connects are refused.
        try:
            self.socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.socket.close()
        except OSError:
            pass


class TcpNetwork(Transport):
    """TCP/localhost transport; see module docstring.

    ``nodelay=False`` re-enables Nagle's algorithm on every socket —
    only useful for measuring what ``TCP_NODELAY`` (the default) buys
    on small-message bursts (``benchmarks/bench_tcp.py``).

    ``wire_codec`` selects the frame codec this transport *offers* on
    outbound connections and *accepts* on inbound ones: ``"json"``
    (the default — no handshake, byte-identical behaviour to earlier
    versions) or ``"binary"`` (negotiated per connection, falling back
    to JSON against any peer that does not also offer binary).
    """

    #: Transport-level notifications, exempt from fault verdicts on
    #: every transport (losing the failure notification itself would
    #: make faults unobservable).
    CONTROL_KINDS = frozenset({"undeliverable", "peer_down"})

    def __init__(
        self,
        *,
        nodelay: bool = True,
        wire_codec: str = "json",
        connect_retries: int = 3,
        connect_backoff: float = 0.05,
        connect_backoff_cap: float = 0.5,
    ) -> None:
        super().__init__()
        if wire_codec not in CODECS:
            raise ProtocolError(f"unknown wire codec {wire_codec!r}")
        # The driver thread and every delivery thread send concurrently:
        # the traffic counters need the guarded variant.
        self.stats = ThreadSafeTransportStats()
        self.nodelay = nodelay
        self.wire_codec = wire_codec
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff
        self.connect_backoff_cap = connect_backoff_cap
        self.faults = None
        #: Negotiated codec per outbound (sender, recipient) connection.
        self._codecs: dict[tuple[str, str], str] = {}
        self._servers: dict[str, _PeerServer] = {}
        #: Peers hosted by other processes: peer id -> TCP port.
        self._remote_ports: dict[str, int] = {}
        self._connections: dict[tuple[str, str], socket.socket] = {}
        self._connections_lock = threading.Lock()
        self._send_locks: dict[tuple[str, str], threading.Lock] = {}
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._stopped = False
        self._epoch = time.monotonic()

    # -- Transport API ----------------------------------------------------

    def register(self, peer_id: str, handler: MessageHandler) -> None:
        if self._stopped:
            raise TransportStoppedError("network is stopped")
        if peer_id in self._servers:
            raise UnknownPeerError(f"peer {peer_id!r} already registered")
        self._servers[peer_id] = _PeerServer(self, peer_id, handler)

    def unregister(self, peer_id: str) -> None:
        server = self._servers.pop(peer_id, None)
        if server is None:
            return
        server.stop()
        # Failure-detector announcement to every survivor (delivered
        # through their normal inbox so handler serialisation holds).
        for survivor in self._servers.values():
            with self._inflight_lock:
                self._inflight += 1
            survivor.inbox.put(
                Message(
                    kind="peer_down",
                    sender=peer_id,
                    recipient=survivor.peer_id,
                    payload={"peer": peer_id},
                )
            )

    # -- fault injection ---------------------------------------------------

    def install_faults(self, injector) -> None:
        """Install a :class:`~repro.p2p.faults.FaultInjector`: sends
        consult its verdict (loss retries as delay, exhaustion bounces
        an ``undeliverable`` to the sender, duplicates write extra
        frames) and every handled delivery feeds its models and
        event-count hooks — the same seam the simulator exposes, over
        real sockets."""
        self.faults = injector
        injector.bind_transport(self)

    def severed_pairs(self) -> frozenset:
        return self.faults.severed_pairs() if self.faults else frozenset()

    def announce_unreachable(self, peer: str, to: str) -> None:
        """Failure-detector notice: tell locally hosted peer *to* that
        *peer* is unreachable.  Silently skipped when *to* lives in
        another process — that process's own injector copy announces
        its side of the cut."""
        server = self._servers.get(to)
        if server is None:
            return
        with self._inflight_lock:
            self._inflight += 1
        server.inbox.put(
            Message(
                kind="peer_down",
                sender=peer,
                recipient=to,
                payload={"peer": peer},
            )
        )

    def _bounce(self, message: Message) -> None:
        """Return an ``undeliverable`` notice for *message* to its
        sender's local inbox (mirrors the simulator's bounce path;
        never bounces a bounce)."""
        if message.kind == "undeliverable":
            return
        server = self._servers.get(message.sender)
        if server is None:
            return
        with self._inflight_lock:
            self._inflight += 1
        server.inbox.put(
            Message(
                kind="undeliverable",
                sender=message.recipient,
                recipient=message.sender,
                payload={
                    "kind": message.kind,
                    "payload": message.payload,
                    "recipient": message.recipient,
                },
            )
        )

    # -- multi-process wiring ---------------------------------------------

    def add_remote_peer(self, peer_id: str, port: int) -> None:
        """Register a peer hosted by another process at *port*.

        Sends to *peer_id* connect to ``127.0.0.1:port`` with the same
        framing as local delivery; the protocol layers see no
        difference.  The driver of a process-per-node deployment calls
        this on every worker after exchanging listening ports.
        Re-registering with a new port (the peer's process restarted)
        drops any cached connections to the old incarnation.
        """
        if peer_id in self._servers:
            raise UnknownPeerError(
                f"peer {peer_id!r} is hosted by this transport"
            )
        previous = self._remote_ports.get(peer_id)
        self._remote_ports[peer_id] = port
        if previous is not None and previous != port:
            with self._connections_lock:
                stale = [
                    key for key in self._send_locks if key[1] == peer_id
                ]
                for key in stale:
                    self._codecs.pop(key, None)
                    connection = self._connections.pop(key, None)
                    if connection is not None:
                        try:
                            connection.close()
                        except OSError:
                            pass

    def remove_remote_peer(self, peer_id: str) -> None:
        """Forget a remote peer (its process died or left): subsequent
        sends raise :class:`~repro.errors.UnknownPeerError`, which the
        engines treat as a peer failure."""
        self._remote_ports.pop(peer_id, None)
        # Scan under _connections_lock: sender threads insert into
        # _send_locks (setdefault) under the same lock concurrently.
        with self._connections_lock:
            key_matches = [
                key for key in self._send_locks if key[1] == peer_id
            ]
            for key in key_matches:
                self._codecs.pop(key, None)
                connection = self._connections.pop(key, None)
                if connection is not None:
                    try:
                        connection.close()
                    except OSError:
                        pass

    def announce_peer_down(self, peer_id: str) -> None:
        """Deliver a ``peer_down`` notification for a *remote* peer to
        every locally hosted peer, through their normal inboxes (the
        cross-process twin of :meth:`unregister`'s survivor fan-out)."""
        self.remove_remote_peer(peer_id)
        for survivor in self._servers.values():
            with self._inflight_lock:
                self._inflight += 1
            survivor.inbox.put(
                Message(
                    kind="peer_down",
                    sender=peer_id,
                    recipient=survivor.peer_id,
                    payload={"peer": peer_id},
                )
            )

    def peers(self) -> list[str]:
        return list(self._servers) + list(self._remote_ports)

    def port_of(self, peer_id: str) -> int:
        """The rendezvous lookup (peer id -> TCP port)."""
        server = self._servers.get(peer_id)
        if server is not None:
            return server.port
        try:
            return self._remote_ports[peer_id]
        except KeyError:
            raise UnknownPeerError(peer_id) from None

    def send(self, message: Message) -> None:
        if self._stopped:
            raise TransportStoppedError("network is stopped")
        local = message.recipient in self._servers
        if not local and message.recipient not in self._remote_ports:
            raise UnknownPeerError(message.recipient)
        self.stats.record_send(message)
        copies = 1
        extra_delay = 0.0
        if self.faults is not None and message.kind not in self.CONTROL_KINDS:
            verdict = self.faults.verdict(message)
            if verdict.bounce:
                self._bounce(message)
                return
            copies = max(1, verdict.copies)
            extra_delay = max(0.0, verdict.extra_delay)
        if local:
            # In-flight accounting is per process: a local recipient's
            # handling decrements here (once per injected copy); a
            # remote recipient's transport counts arrivals instead.
            with self._inflight_lock:
                self._inflight += copies
        key = (message.sender, message.recipient)
        with self._connections_lock:
            send_lock = self._send_locks.setdefault(key, threading.Lock())
        # The per-pair lock keeps frames atomic when the main thread and
        # a handler thread send under the same (sender, recipient) pair.
        # The body is framed only once the connection (and with it the
        # negotiated codec) is known.  An injected extra delay sleeps
        # INSIDE the pair lock: later messages on the same pair cannot
        # overtake the delayed one, mirroring the simulator's pair-
        # horizon FIFO clamp.
        try:
            with send_lock:
                if extra_delay > 0.0:
                    time.sleep(extra_delay)
                connection = self._connection_for(message.sender, message.recipient)
                body = self._frame_body(key, message)
                try:
                    for _ in range(copies):
                        connection.sendall(_frame(body))
                except OSError:
                    # One reconnect attempt (the receiver may have
                    # restarted).  Re-sending every copy is at-least-
                    # once: endpoints dedup by message id.
                    with self._connections_lock:
                        self._connections.pop(key, None)
                        self._codecs.pop(key, None)
                    connection = self._connection_for(message.sender, message.recipient)
                    body = self._frame_body(key, message)
                    for _ in range(copies):
                        connection.sendall(_frame(body))
                self.stats.record_wire((len(body) + _LENGTH.size) * copies)
        except OSError as exc:
            # A remote worker died between the port lookup and the
            # write: undo the local-recipient accounting (never taken
            # here — remote sends don't increment) and surface the
            # failure as an unknown peer, the engines' failure path.
            if local:
                with self._inflight_lock:
                    self._inflight -= copies
            raise UnknownPeerError(message.recipient) from exc

    def _frame_body(self, key: tuple[str, str], message: Message) -> bytes:
        if self._codecs.get(key) == "binary":
            return message.to_binary()
        return message.to_wire()

    def _connect_with_retry(self, recipient: str) -> socket.socket:
        """Connect to *recipient*, retrying refused/reset connects with
        capped exponential backoff + jitter — a restarting peer's
        listening socket comes back within the budget, and its *new*
        port is picked up because the rendezvous lookup re-runs on
        every attempt.  Exhausting the budget re-raises the last
        ``OSError`` (the caller maps it to ``UnknownPeerError``)."""
        attempt = 0
        while True:
            try:
                return socket.create_connection(
                    ("127.0.0.1", self.port_of(recipient)), timeout=5.0
                )
            except OSError:
                if attempt >= self.connect_retries:
                    raise
                backoff = min(
                    self.connect_backoff_cap,
                    self.connect_backoff * (2 ** attempt),
                )
                time.sleep(backoff * (0.5 + random.random() / 2))
                attempt += 1

    def _connection_for(self, sender: str, recipient: str) -> socket.socket:
        key = (sender, recipient)
        with self._connections_lock:
            connection = self._connections.get(key)
            if connection is None:
                connection = self._connect_with_retry(recipient)
                if self.nodelay:
                    try:
                        connection.setsockopt(
                            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                        )
                    except OSError:  # pragma: no cover - platform quirk
                        pass
                self._codecs[key] = (
                    self._negotiate(connection)
                    if self.wire_codec == "binary"
                    else "json"
                )
                self._connections[key] = connection
            return connection

    def _negotiate(self, connection: socket.socket) -> str:
        """Offer our codecs on a fresh connection; return the ack'd one.

        Any failure — timeout, short read, malformed or unexpected
        answer — falls back to ``"json"``, the codec every version of
        the protocol understands.
        """
        offer = FRAME_OFFER + stable_json({"codecs": list(CODECS)}).encode(
            "utf-8"
        )
        try:
            connection.sendall(_frame(offer))
            header = _read_exact(connection, _LENGTH.size)
            if header is None:
                return "json"
            (length,) = _LENGTH.unpack(header)
            body = _read_exact(connection, length)
            if body is None or body[:1] != FRAME_ACK:
                return "json"
            codec = json.loads(body[1:].decode("utf-8")).get("codec")
        except (OSError, ValueError, AttributeError):
            return "json"
        return codec if codec in CODECS else "json"

    def now(self) -> float:
        return time.monotonic() - self._epoch

    def run_until_idle(self, max_messages: int | None = None) -> int:
        """Wait until no message is in flight (sent but not yet handled).

        Event-driven: blocks on the progress condition, which every
        delivery loop notifies after handling a message.  ``inflight ==
        0`` genuinely means idle — a handler's own sends increment the
        counter *before* the handled message is decremented, and the
        driver's sends precede its call here — so one observation
        suffices (no re-check delay, no sleep-polling).
        """
        start_delivered = self.stats.messages_delivered

        def idle_or_quota() -> bool:
            if max_messages is not None:
                if self.stats.messages_delivered - start_delivered >= max_messages:
                    return True
            with self._inflight_lock:
                return self._inflight == 0
        self.wait_for(idle_or_quota, description="transport quiescence")
        return self.stats.messages_delivered - start_delivered

    def stop(self) -> None:
        self._stopped = True
        for server in list(self._servers.values()):
            server.stop()
        self.notify_progress()  # release any waiter blocked on progress
        self._servers.clear()
        self._remote_ports.clear()
        with self._connections_lock:
            for connection in self._connections.values():
                try:
                    connection.close()
                except OSError:
                    pass
            self._connections.clear()
            self._codecs.clear()
