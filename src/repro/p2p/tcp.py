"""Real TCP transport: the protocol over actual sockets.

Proves the coDB protocol stack is not simulator-bound (experiment
E13).  Design:

* Every registered peer gets a listening socket on ``127.0.0.1``
  (ephemeral port) and a *delivery thread* that executes its handler
  one message at a time — the same actor discipline as the simulator.
* ``send`` frames the message (4-byte big-endian length prefix + JSON
  body) over a cached outbound connection per (sender, recipient)
  pair, giving per-pair FIFO just like a JXTA pipe.
* a global in-flight counter is incremented at ``send`` and
  decremented after the recipient's handler returns, so quiescence
  means *handled*, not merely delivered.  ``run_until_idle`` and
  ``wait_for`` block on the transport's progress condition, which
  every delivery loop notifies after handling a message — drivers are
  woken event-driven, never by sleep-polling.

The port registry doubles as the rendezvous service: peers address
each other by peer id only, never by host/port — "IP independent
naming space" (§2).
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from queue import Empty, Queue

from repro.errors import TransportStoppedError, UnknownPeerError
from repro.p2p.messages import Message
from repro.p2p.transport import MessageHandler, ThreadSafeTransportStats, Transport

_LENGTH = struct.Struct(">I")


def _read_exact(connection: socket.socket, count: int) -> bytes | None:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = connection.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _PeerServer:
    """Listening socket + delivery worker for one peer."""

    def __init__(self, network: "TcpNetwork", peer_id: str, handler: MessageHandler) -> None:
        self.network = network
        self.peer_id = peer_id
        self.handler = handler
        self.inbox: Queue[Message | None] = Queue()
        self.socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.socket.bind(("127.0.0.1", 0))
        self.socket.listen(16)
        self.port = self.socket.getsockname()[1]
        self._running = True
        self.accept_thread = threading.Thread(
            target=self._accept_loop, name=f"accept-{peer_id}", daemon=True
        )
        self.delivery_thread = threading.Thread(
            target=self._delivery_loop, name=f"deliver-{peer_id}", daemon=True
        )
        self.accept_thread.start()
        self.delivery_thread.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                connection, _ = self.socket.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._receive_loop,
                args=(connection,),
                name=f"recv-{self.peer_id}",
                daemon=True,
            )
            thread.start()

    def _receive_loop(self, connection: socket.socket) -> None:
        with connection:
            while self._running:
                try:
                    header = _read_exact(connection, _LENGTH.size)
                    if header is None:
                        return
                    (length,) = _LENGTH.unpack(header)
                    body = _read_exact(connection, length)
                    if body is None:
                        return
                except OSError:
                    return
                self.inbox.put(Message.from_wire(body))

    def _delivery_loop(self) -> None:
        while True:
            try:
                message = self.inbox.get(timeout=0.2)
            except Empty:
                if not self._running:
                    return
                continue
            if message is None:
                return
            try:
                self.network.stats.record_delivery()
                self.handler(message)
            finally:
                with self.network._inflight_lock:
                    self.network._inflight -= 1
                # Wake drivers blocked in wait_for/run_until_idle: the
                # handled message may have completed what they await.
                self.network.notify_progress()

    def stop(self) -> None:
        self._running = False
        self.inbox.put(None)
        try:
            self.socket.close()
        except OSError:
            pass


class TcpNetwork(Transport):
    """TCP/localhost transport; see module docstring."""

    def __init__(self) -> None:
        super().__init__()
        # The driver thread and every delivery thread send concurrently:
        # the traffic counters need the guarded variant.
        self.stats = ThreadSafeTransportStats()
        self._servers: dict[str, _PeerServer] = {}
        self._connections: dict[tuple[str, str], socket.socket] = {}
        self._connections_lock = threading.Lock()
        self._send_locks: dict[tuple[str, str], threading.Lock] = {}
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._stopped = False
        self._epoch = time.monotonic()

    # -- Transport API ----------------------------------------------------

    def register(self, peer_id: str, handler: MessageHandler) -> None:
        if self._stopped:
            raise TransportStoppedError("network is stopped")
        if peer_id in self._servers:
            raise UnknownPeerError(f"peer {peer_id!r} already registered")
        self._servers[peer_id] = _PeerServer(self, peer_id, handler)

    def unregister(self, peer_id: str) -> None:
        server = self._servers.pop(peer_id, None)
        if server is None:
            return
        server.stop()
        # Failure-detector announcement to every survivor (delivered
        # through their normal inbox so handler serialisation holds).
        for survivor in self._servers.values():
            with self._inflight_lock:
                self._inflight += 1
            survivor.inbox.put(
                Message(
                    kind="peer_down",
                    sender=peer_id,
                    recipient=survivor.peer_id,
                    payload={"peer": peer_id},
                )
            )

    def peers(self) -> list[str]:
        return list(self._servers)

    def port_of(self, peer_id: str) -> int:
        """The rendezvous lookup (peer id -> TCP port)."""
        try:
            return self._servers[peer_id].port
        except KeyError:
            raise UnknownPeerError(peer_id) from None

    def send(self, message: Message) -> None:
        if self._stopped:
            raise TransportStoppedError("network is stopped")
        if message.recipient not in self._servers:
            raise UnknownPeerError(message.recipient)
        body = message.to_wire()
        self.stats.record_send(message)
        with self._inflight_lock:
            self._inflight += 1
        key = (message.sender, message.recipient)
        with self._connections_lock:
            send_lock = self._send_locks.setdefault(key, threading.Lock())
        # The per-pair lock keeps frames atomic when the main thread and
        # a handler thread send under the same (sender, recipient) pair.
        with send_lock:
            connection = self._connection_for(message.sender, message.recipient)
            try:
                connection.sendall(_LENGTH.pack(len(body)) + body)
            except OSError:
                # One reconnect attempt (the receiver may have restarted).
                with self._connections_lock:
                    self._connections.pop(key, None)
                connection = self._connection_for(message.sender, message.recipient)
                connection.sendall(_LENGTH.pack(len(body)) + body)

    def _connection_for(self, sender: str, recipient: str) -> socket.socket:
        key = (sender, recipient)
        with self._connections_lock:
            connection = self._connections.get(key)
            if connection is None:
                connection = socket.create_connection(
                    ("127.0.0.1", self.port_of(recipient)), timeout=5.0
                )
                self._connections[key] = connection
            return connection

    def now(self) -> float:
        return time.monotonic() - self._epoch

    def run_until_idle(self, max_messages: int | None = None) -> int:
        """Wait until no message is in flight (sent but not yet handled).

        Event-driven: blocks on the progress condition, which every
        delivery loop notifies after handling a message.  ``inflight ==
        0`` genuinely means idle — a handler's own sends increment the
        counter *before* the handled message is decremented, and the
        driver's sends precede its call here — so one observation
        suffices (no re-check delay, no sleep-polling).
        """
        start_delivered = self.stats.messages_delivered

        def idle_or_quota() -> bool:
            if max_messages is not None:
                if self.stats.messages_delivered - start_delivered >= max_messages:
                    return True
            with self._inflight_lock:
                return self._inflight == 0
        self.wait_for(idle_or_quota, description="transport quiescence")
        return self.stats.messages_delivered - start_delivered

    def stop(self) -> None:
        self._stopped = True
        for server in list(self._servers.values()):
            server.stop()
        self.notify_progress()  # release any waiter blocked on progress
        self._servers.clear()
        with self._connections_lock:
            for connection in self._connections.values():
                try:
                    connection.close()
                except OSError:
                    pass
            self._connections.clear()
