"""A JXTA-like peer-to-peer substrate.

The paper builds coDB on JXTA and uses exactly four of its concepts
(§2): peer definition/naming, pipes, messages enveloping arbitrary
data, and resource advertisement/discovery.  This package implements
those concepts natively:

* :mod:`ids` — opaque, reproducible peer/pipe/message identifiers;
* :mod:`messages` — typed message envelopes with JSON wire format and
  byte-accurate size accounting (the demo's "volume of the data in
  each message" statistic);
* :mod:`advertisements` — peer and pipe advertisements;
* :mod:`discovery` — a decentralised advertisement cache with
  broadcast discovery requests (the "peer discovery window" of
  Figure 3);
* :mod:`transport` — the abstract transport;
* :mod:`inproc` — a deterministic discrete-event simulated network
  with a virtual clock and a configurable latency/bandwidth model;
* :mod:`tcp` — a real TCP/localhost transport (threads + sockets),
  wire-compatible with the simulated one;
* :mod:`pipes` — communication links between acquainted peers,
  carrying per-pipe traffic statistics;
* :mod:`endpoint` — per-peer dispatch of incoming messages to
  registered handlers.

Everything above this package (the coDB protocol layers) is
transport-agnostic.
"""

from repro.p2p.ids import IdAuthority
from repro.p2p.messages import Message
from repro.p2p.advertisements import PeerAdvertisement, PipeAdvertisement
from repro.p2p.transport import Transport, TransportStats
from repro.p2p.inproc import InProcessNetwork, LatencyModel
from repro.p2p.tcp import TcpNetwork
from repro.p2p.endpoint import Endpoint
from repro.p2p.pipes import Pipe, PipeTable
from repro.p2p.discovery import DiscoveryService

__all__ = [
    "IdAuthority",
    "Message",
    "PeerAdvertisement",
    "PipeAdvertisement",
    "Transport",
    "TransportStats",
    "InProcessNetwork",
    "LatencyModel",
    "TcpNetwork",
    "Endpoint",
    "Pipe",
    "PipeTable",
    "DiscoveryService",
]
