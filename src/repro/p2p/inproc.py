"""Deterministic in-process simulated network.

A discrete-event simulator: ``send`` schedules a delivery event at
``now + latency``; :meth:`InProcessNetwork.run_until_idle` pops events
in timestamp order and invokes the recipient's handler, which may send
further messages.  Per (sender, recipient) pair delivery is FIFO even
under equal timestamps (a monotone sequence number breaks ties), so
the protocol's ordering assumptions hold exactly as they would on a
TCP pipe.

The latency model charges ``base + jitter + bytes / bandwidth`` per
message.  Jitter is drawn from a seeded PRNG, so two runs with the
same seed produce byte-identical traces and timings — this is what
makes every benchmark reproducible (DESIGN.md §2, substitution of the
demo's lab testbed).

An optional :class:`~repro.p2p.faults.FaultInjector` makes the
simulator adversarial: every scheduled message gets a verdict
(deliver / duplicate / extra delay / bounce) and every completed
delivery is reported back, which is what drives event-count fault
hooks.  Transport-synthesized control notices (``undeliverable``,
``peer_down``) are exempt — they *are* the failure detector, not wire
traffic.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass

from repro.errors import (
    RequestTimeoutError,
    TransportStoppedError,
    UnknownPeerError,
)
from repro.p2p.messages import Message
from repro.p2p.transport import MessageHandler, Transport


@dataclass
class LatencyModel:
    """Per-message delay: ``base + U(0, jitter) + size/bandwidth``.

    Attributes
    ----------
    base_seconds:
        Fixed one-way latency (default 1 ms).
    jitter_seconds:
        Upper bound of uniform jitter (default 0 — fully deterministic
        timing; benchmarks that want realism set e.g. 0.2 ms).
    bandwidth_bytes_per_second:
        Serialisation cost; ``0`` disables the size term.
    """

    base_seconds: float = 0.001
    jitter_seconds: float = 0.0
    bandwidth_bytes_per_second: float = 0.0

    def delay(self, size_bytes: int, rng: random.Random) -> float:
        delay = self.base_seconds
        if self.jitter_seconds > 0.0:
            delay += rng.uniform(0.0, self.jitter_seconds)
        if self.bandwidth_bytes_per_second > 0.0:
            delay += size_bytes / self.bandwidth_bytes_per_second
        return delay


class InProcessNetwork(Transport):
    """The simulated transport (see module docstring).

    Parameters
    ----------
    seed:
        Seeds the jitter PRNG (and nothing else).
    latency:
        The :class:`LatencyModel`; default is a constant 1 ms.
    faults:
        Optional :class:`~repro.p2p.faults.FaultInjector`; may also be
        installed after construction with :meth:`install_faults`.
    """

    #: Kinds the fault layer never touches: these are synthesized by
    #: the transport itself (or by a fault model playing failure
    #: detector) and bouncing a bounce would loop forever.
    CONTROL_KINDS = frozenset({"undeliverable", "peer_down"})

    def __init__(
        self,
        seed: int = 0,
        latency: LatencyModel | None = None,
        faults=None,
    ) -> None:
        super().__init__()
        self.latency = latency if latency is not None else LatencyModel()
        self._rng = random.Random(seed)
        self._handlers: dict[str, MessageHandler] = {}
        # Event queue entries: (deliver_at, sequence, message).
        self._queue: list[tuple[float, int, Message]] = []
        self._sequence = 0
        self._clock = 0.0
        self._stopped = False
        #: Per-pair last scheduled delivery time, to keep FIFO order
        #: even when jitter would reorder messages on the same pipe.
        self._pair_horizon: dict[tuple[str, str], float] = {}
        self.faults = None
        if faults is not None:
            self.install_faults(faults)

    def install_faults(self, injector) -> None:
        """Attach a :class:`~repro.p2p.faults.FaultInjector` (drivers
        typically build and start the network fault-free first)."""
        self.faults = injector
        injector.bind_transport(self)

    # -- Transport API ----------------------------------------------------

    def register(self, peer_id: str, handler: MessageHandler) -> None:
        if peer_id in self._handlers:
            raise UnknownPeerError(f"peer {peer_id!r} already registered")
        self._handlers[peer_id] = handler

    def unregister(self, peer_id: str) -> None:
        """Remove a peer, announcing ``peer_down`` to every survivor.

        The announcement plays the failure detector's role: survivors
        write off acknowledgements the departed peer still owed
        (JXTA's peer-monitoring service plays this part in the original
        system).
        """
        if self._handlers.pop(peer_id, None) is None:
            return
        for survivor in self._handlers:
            notice = Message(
                kind="peer_down",
                sender=peer_id,
                recipient=survivor,
                payload={"peer": peer_id},
            )
            heapq.heappush(self._queue, (self._clock, self._sequence, notice))
            self._sequence += 1

    def peers(self) -> list[str]:
        return list(self._handlers)

    def send(self, message: Message) -> None:
        if self._stopped:
            raise TransportStoppedError("network is stopped")
        if message.recipient not in self._handlers:
            raise UnknownPeerError(message.recipient)
        self.stats.record_send(message)
        copies = 1
        extra_delay = 0.0
        if self.faults is not None and message.kind not in self.CONTROL_KINDS:
            verdict = self.faults.verdict(message)
            if verdict.bounce:
                self._bounce(message)
                return
            copies = max(1, verdict.copies)
            extra_delay = max(0.0, verdict.extra_delay)
        for _ in range(copies):
            delay = self.latency.delay(message.size_bytes(), self._rng)
            deliver_at = self._clock + delay + extra_delay
            pair = (message.sender, message.recipient)
            horizon = self._pair_horizon.get(pair, 0.0)
            if deliver_at < horizon:
                deliver_at = horizon  # FIFO per pipe
            self._pair_horizon[pair] = deliver_at
            heapq.heappush(self._queue, (deliver_at, self._sequence, message))
            self._sequence += 1

    def _bounce(self, message: Message) -> None:
        """Return *message* to its sender as an ``undeliverable``
        notification (used both for mail to departed peers and for
        fault-injected losses that exhausted their retries)."""
        if message.kind == "undeliverable" or message.sender not in self._handlers:
            return
        bounce = Message(
            kind="undeliverable",
            sender=message.recipient,
            recipient=message.sender,
            payload={
                "kind": message.kind,
                "payload": message.payload,
                "recipient": message.recipient,
            },
        )
        heapq.heappush(self._queue, (self._clock, self._sequence, bounce))
        self._sequence += 1

    def announce_unreachable(self, peer: str, to: str) -> None:
        """Deliver a ``peer_down`` notice for *peer* to *to* without
        unregistering anyone — a partition's failure-detector timeout,
        compressed to an event (both peers stay alive on their sides)."""
        if to not in self._handlers:
            return
        notice = Message(
            kind="peer_down",
            sender=peer,
            recipient=to,
            payload={"peer": peer},
        )
        heapq.heappush(self._queue, (self._clock, self._sequence, notice))
        self._sequence += 1

    def severed_pairs(self) -> frozenset:
        if self.faults is None:
            return frozenset()
        return self.faults.severed_pairs()

    def now(self) -> float:
        return self._clock

    def pending(self) -> int:
        """Messages currently in flight."""
        return len(self._queue)

    def step(self) -> bool:
        """Deliver the single earliest in-flight message.

        Returns ``False`` when nothing is in flight.  Mail addressed to
        a peer that has left the network *bounces*: the sender receives
        an ``undeliverable`` notification wrapping the original message
        (kind, payload, intended recipient), which is what lets the
        coDB protocol terminate under churn (§1: nodes may "appear or
        disappear during the computation").  Acks and bounces
        themselves are dropped silently.
        """
        if not self._queue:
            return False
        deliver_at, _, message = heapq.heappop(self._queue)
        self._clock = max(self._clock, deliver_at)
        handler = self._handlers.get(message.recipient)
        if handler is not None:
            self.stats.record_delivery()
            handler(message)
            if self.faults is not None:
                self.faults.after_delivery(message)
        elif message.kind != "ack":
            self._bounce(message)
        return True

    def run_until_idle(self, max_messages: int | None = None) -> int:
        delivered = 0
        while self._queue:
            if max_messages is not None and delivered >= max_messages:
                break
            if self.step():
                delivered += 1
        return delivered

    def wait_for(self, predicate, timeout=None, *, description="operation"):
        """Step the event queue one delivery at a time until *predicate*.

        Single-threaded, so "waiting" means driving: each step delivers
        exactly one message and the predicate is re-checked, which makes
        completion *order* observable at virtual-time granularity (what
        ``as_completed`` streams).  If the queue drains first, nothing
        in flight can ever satisfy the predicate — that is the
        simulator's notion of a timeout.
        """
        while not predicate():
            if not self.step():
                raise RequestTimeoutError(
                    f"network went idle before {description} completed"
                )

    def run_for(self, duration: float) -> int:
        """Deliver events until the virtual clock advances by *duration*."""
        deadline = self._clock + duration
        delivered = 0
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
            delivered += 1
        self._clock = max(self._clock, deadline)
        return delivered

    def stop(self) -> None:
        self._stopped = True
        self._queue.clear()
