"""Decentralised peer discovery.

The demo UI (Figure 3) shows, for each node, "which other nodes (not
acquaintances) it has discovered with the help of JXTA".  We reproduce
the mechanism: each peer keeps a local advertisement cache; a
discovery round broadcasts a ``discovery_request``; every peer answers
with its own advertisement (and, gossip-style, any cached ones), and
responses populate the requester's cache.

The service is pure message-plumbing — it works identically over the
simulated and the TCP transport.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.p2p.advertisements import PeerAdvertisement
from repro.p2p.endpoint import Endpoint
from repro.p2p.messages import Message

#: Bound on cached foreign advertisements (our own never counts):
#: gossip re-broadcasts every cache on every round, so an unbounded
#: cache grows with total network churn, not network size.  Same
#: treatment as the endpoint's dedup log — least-recently-seen out.
CACHE_LIMIT = 1024


class DiscoveryService:
    """Advertisement cache + discovery protocol for one peer."""

    def __init__(self, endpoint: Endpoint, advertisement: PeerAdvertisement) -> None:
        self.endpoint = endpoint
        self.advertisement = advertisement
        self._cache: OrderedDict[str, PeerAdvertisement] = OrderedDict(
            {advertisement.peer_id: advertisement}
        )
        self.requests_seen = 0
        self.evictions = 0
        endpoint.on("discovery_request", self._on_request)
        endpoint.on("discovery_response", self._on_response)

    # -- queries ---------------------------------------------------------

    def known_peers(self) -> list[PeerAdvertisement]:
        """Everything in the cache, self included, in discovery order."""
        return list(self._cache.values())

    def known_peer_ids(self) -> list[str]:
        return list(self._cache)

    def lookup(self, peer_id: str) -> PeerAdvertisement | None:
        return self._cache.get(peer_id)

    def find_by_name(self, name: str) -> PeerAdvertisement | None:
        for advertisement in self._cache.values():
            if advertisement.name == name:
                return advertisement
        return None

    # -- protocol -----------------------------------------------------------

    def announce(self) -> int:
        """Broadcast our advertisement unsolicited (node start-up)."""
        return self.endpoint.transport.broadcast(
            self.endpoint.peer_id,
            "discovery_response",
            {"advertisements": [self.advertisement.to_payload()]},
        )

    def discover(self) -> int:
        """Start a discovery round; returns the request fan-out.

        Results arrive asynchronously; on the simulated transport call
        ``transport.run_until_idle()`` and then read
        :meth:`known_peers`.
        """
        return self.endpoint.transport.broadcast(
            self.endpoint.peer_id, "discovery_request", {}
        )

    def _on_request(self, message: Message) -> None:
        self.requests_seen += 1
        advertisements = [self.advertisement.to_payload()]
        for cached in self._cache.values():
            if cached.peer_id not in (self.endpoint.peer_id, message.sender):
                advertisements.append(cached.to_payload())
        self.endpoint.send(
            message.sender,
            "discovery_response",
            {"advertisements": advertisements},
        )

    def _on_response(self, message: Message) -> None:
        for payload in message.payload.get("advertisements", ()):
            advertisement = PeerAdvertisement.from_payload(payload)
            if advertisement.peer_id in self._cache:
                # Re-gossip of a known peer: refresh its recency only.
                self._cache.move_to_end(advertisement.peer_id)
                continue
            self._cache[advertisement.peer_id] = advertisement
            while len(self._cache) > CACHE_LIMIT + 1:  # +1: ourselves
                for peer_id in self._cache:
                    if peer_id != self.endpoint.peer_id:
                        del self._cache[peer_id]
                        self.evictions += 1
                        break
