"""Typed message envelopes and the two frame codecs they travel in.

JXTA messages "can envelope arbitrary data (e.g. code, images,
queries)" (§2).  Ours envelope JSON payloads.  Every message knows its
serialised byte size — the statistics module reports "the volume of
the data in each message" (§4) — and serialisation is stable, so sizes
are identical across runs and transports.

Two codecs share the wire.  Frames are self-describing by their first
byte, so a receiver needs no per-connection decode state:

* **stable JSON** (first byte ``{``) — the default and the
  cross-version fallback.  ``to_wire``/``from_wire``.
* **binary** (first byte :data:`FRAME_BINARY`) — a length-delimited
  restricted-pickle frame, smaller and markedly faster to encode and
  decode than JSON (``benchmarks/bench_messages.py`` measures both).
  ``to_binary``/``from_binary``.  Decoding uses an
  :class:`pickle.Unpickler` whose ``find_class`` always raises, so a
  frame can only ever reconstruct plain data (dicts, lists, scalars —
  rows cross pre-encoded via ``encode_row``), never import or call
  anything.

A connection speaks binary only after an explicit handshake
(negotiated in :mod:`repro.p2p.tcp`): the sender opens with a
:data:`FRAME_OFFER` frame listing the codecs it can emit, the receiver
answers with a :data:`FRAME_ACK` naming the one it accepts, and JSON
wins whenever either side does not offer binary.  Whatever the wire
codec, ``size_bytes()`` stays the *stable-JSON* size — the §4 volume
statistics are codec-independent and identical across transports.
"""

from __future__ import annotations

import io
import json
import pickle
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any

from repro._util import stable_json
from repro.errors import ProtocolError

#: First byte of a binary (restricted-pickle) frame.  Stable-JSON
#: frames start with ``{`` (0x7B); 0x01-0x03 can never open JSON.
FRAME_BINARY = b"\x01"
#: First byte of a codec-negotiation offer (JSON body: {"codecs": [...]})
FRAME_OFFER = b"\x02"
#: First byte of a codec-negotiation ack (JSON body: {"codec": ...})
FRAME_ACK = b"\x03"

#: Codec names, most preferred first, as they appear in offer frames.
CODECS = ("binary", "json")


class _DataUnpickler(pickle.Unpickler):
    """Unpickler for data-only frames: any attempt to resolve a global
    (class, function — the vector every pickle exploit needs) fails."""

    def find_class(self, module: str, name: str):  # noqa: ARG002
        raise ProtocolError(
            f"binary frame referenced global {module}.{name}; "
            "only plain data is allowed on the wire"
        )


def encode_binary(obj: Any) -> bytes:
    """Encode plain data as a tagged binary frame body."""
    return FRAME_BINARY + pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode_binary(data: bytes) -> Any:
    """Decode a tagged binary frame body back to plain data.

    Raises :class:`~repro.errors.ProtocolError` on anything that is
    not a well-formed data-only frame.
    """
    buffer = io.BytesIO(data)
    buffer.seek(1)  # skip the FRAME_BINARY tag
    try:
        return _DataUnpickler(buffer).load()
    except ProtocolError:
        raise
    except Exception as exc:  # pickle raises a small zoo of types
        raise ProtocolError(f"malformed binary frame: {exc}") from exc

#: Message kinds used by the coDB protocol (documented here so the
#: wire vocabulary is in one place; the p2p layer itself treats kinds
#: as opaque strings).
KINDS = (
    "hello",                # pipe establishment handshake
    "rules_file",           # super-peer broadcast of coordination rules
    "update_request",       # global update propagation (§2)
    "query_result",         # tuples flowing back along a link (§3)
    "link_closed",          # incoming-link closure notification (§3)
    "update_complete",      # origin's completion flood (condition (b))
    "ack",                  # diffusing-computation acknowledgement
    "query_request",        # query-time answering request (§3)
    "query_data",           # query-time answering results
    "query_answer",         # query-time answering results (legacy name)
    "query_complete",       # query-time answering end-of-stream
    "push_delta",           # continuous-mode delta push (subscriptions)
    "invalidation",         # CUP-style cache interest + invalidation
    "stats_request",        # super-peer statistics collection (§4)
    "stats_response",
    "discovery_request",    # peer discovery (§2, Figure 3)
    "discovery_response",
    "topology_request",     # topology discovery procedure (§2 UI)
    "topology_response",
    "peer_down",            # failure-detector announcement
    "undeliverable",        # bounced protocol mail (dynamic networks)
    "rejoin",               # crash-and-rejoin handshake (resync digests)
)


@dataclass(frozen=True)
class Message:
    """One message on the wire.

    Attributes
    ----------
    kind:
        Protocol message type; see :data:`KINDS`.
    sender, recipient:
        Peer ids (or symbolic node names — the transport resolves).
    payload:
        JSON-serialisable dict.  Rows travel pre-encoded via
        :func:`repro.relational.values.encode_row`.
    message_id:
        Unique id assigned by the sender's id authority.
    """

    kind: str
    sender: str
    recipient: str
    payload: dict[str, Any] = field(default_factory=dict)
    message_id: str = ""

    # Serialisation is cached: a message's bytes are asked for many
    # times per hop (the transport counters, the §4 per-rule statistics
    # and the per-pipe counters each call ``size_bytes``, and TCP sends
    # the wire form itself), while messages are treated as immutable
    # once built — recomputing ``stable_json`` every time was a
    # hot-path waste.  ``cached_property`` stores straight into
    # ``__dict__``, which works on a frozen dataclass.

    @cached_property
    def _wire(self) -> bytes:
        return stable_json(
            {
                "kind": self.kind,
                "sender": self.sender,
                "recipient": self.recipient,
                "payload": self.payload,
                "message_id": self.message_id,
            }
        ).encode("utf-8")

    @cached_property
    def _payload_size(self) -> int:
        return len(stable_json(self.payload).encode("utf-8"))

    def size_bytes(self) -> int:
        """Stable serialised size of the full envelope (cached)."""
        return len(self._wire)

    def payload_bytes(self) -> int:
        """Stable serialised size of the payload alone (cached)."""
        return self._payload_size

    def to_wire(self) -> bytes:
        """Serialise for a byte transport (TCP); cached per message."""
        return self._wire

    @classmethod
    def from_wire(cls, data: bytes) -> "Message":
        try:
            decoded = json.loads(data.decode("utf-8"))
            message = cls(
                kind=decoded["kind"],
                sender=decoded["sender"],
                recipient=decoded["recipient"],
                payload=decoded["payload"],
                message_id=decoded.get("message_id", ""),
            )
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"malformed wire message: {exc}") from exc
        # Seed the wire cache with the received bytes: every coDB
        # sender serialises with ``stable_json``, so the bytes ARE the
        # stable form — the receive path never re-serialises just to
        # count sizes.
        message.__dict__["_wire"] = data
        return message

    @cached_property
    def _binary(self) -> bytes:
        return encode_binary(
            (self.kind, self.sender, self.recipient, self.payload,
             self.message_id)
        )

    def to_binary(self) -> bytes:
        """Serialise as a binary frame (cached, like :meth:`to_wire`)."""
        return self._binary

    @classmethod
    def from_binary(cls, data: bytes) -> "Message":
        fields = decode_binary(data)
        try:
            kind, sender, recipient, payload, message_id = fields
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed binary message: {exc}") from exc
        if not (
            isinstance(kind, str)
            and isinstance(sender, str)
            and isinstance(recipient, str)
            and isinstance(payload, dict)
            and isinstance(message_id, str)
        ):
            raise ProtocolError("binary message fields have wrong types")
        message = cls(
            kind=kind,
            sender=sender,
            recipient=recipient,
            payload=payload,
            message_id=message_id,
        )
        # Mirror ``from_wire``: the received bytes seed the *binary*
        # cache.  ``size_bytes`` still reports the stable-JSON volume
        # (computed lazily if a statistics reader asks).
        message.__dict__["_binary"] = data
        return message

    @classmethod
    def from_frame(cls, data: bytes) -> "Message":
        """Decode a self-describing frame (JSON or binary) by its tag."""
        if data[:1] == FRAME_BINARY:
            return cls.from_binary(data)
        return cls.from_wire(data)

    def reply(self, kind: str, payload: dict[str, Any], message_id: str = "") -> "Message":
        """A message back to this message's sender."""
        return Message(
            kind=kind,
            sender=self.recipient,
            recipient=self.sender,
            payload=payload,
            message_id=message_id,
        )
