"""Typed message envelopes.

JXTA messages "can envelope arbitrary data (e.g. code, images,
queries)" (§2).  Ours envelope JSON payloads.  Every message knows its
serialised byte size — the statistics module reports "the volume of
the data in each message" (§4) — and serialisation is stable, so sizes
are identical across runs and transports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any

from repro._util import stable_json
from repro.errors import ProtocolError

#: Message kinds used by the coDB protocol (documented here so the
#: wire vocabulary is in one place; the p2p layer itself treats kinds
#: as opaque strings).
KINDS = (
    "hello",                # pipe establishment handshake
    "rules_file",           # super-peer broadcast of coordination rules
    "update_request",       # global update propagation (§2)
    "query_result",         # tuples flowing back along a link (§3)
    "link_closed",          # incoming-link closure notification (§3)
    "update_complete",      # origin's completion flood (condition (b))
    "ack",                  # diffusing-computation acknowledgement
    "query_request",        # query-time answering request (§3)
    "query_data",           # query-time answering results
    "query_answer",         # query-time answering results (legacy name)
    "query_complete",       # query-time answering end-of-stream
    "push_delta",           # continuous-mode delta push (subscriptions)
    "stats_request",        # super-peer statistics collection (§4)
    "stats_response",
    "discovery_request",    # peer discovery (§2, Figure 3)
    "discovery_response",
    "topology_request",     # topology discovery procedure (§2 UI)
    "topology_response",
    "peer_down",            # failure-detector announcement
    "undeliverable",        # bounced protocol mail (dynamic networks)
)


@dataclass(frozen=True)
class Message:
    """One message on the wire.

    Attributes
    ----------
    kind:
        Protocol message type; see :data:`KINDS`.
    sender, recipient:
        Peer ids (or symbolic node names — the transport resolves).
    payload:
        JSON-serialisable dict.  Rows travel pre-encoded via
        :func:`repro.relational.values.encode_row`.
    message_id:
        Unique id assigned by the sender's id authority.
    """

    kind: str
    sender: str
    recipient: str
    payload: dict[str, Any] = field(default_factory=dict)
    message_id: str = ""

    # Serialisation is cached: a message's bytes are asked for many
    # times per hop (the transport counters, the §4 per-rule statistics
    # and the per-pipe counters each call ``size_bytes``, and TCP sends
    # the wire form itself), while messages are treated as immutable
    # once built — recomputing ``stable_json`` every time was a
    # hot-path waste.  ``cached_property`` stores straight into
    # ``__dict__``, which works on a frozen dataclass.

    @cached_property
    def _wire(self) -> bytes:
        return stable_json(
            {
                "kind": self.kind,
                "sender": self.sender,
                "recipient": self.recipient,
                "payload": self.payload,
                "message_id": self.message_id,
            }
        ).encode("utf-8")

    @cached_property
    def _payload_size(self) -> int:
        return len(stable_json(self.payload).encode("utf-8"))

    def size_bytes(self) -> int:
        """Stable serialised size of the full envelope (cached)."""
        return len(self._wire)

    def payload_bytes(self) -> int:
        """Stable serialised size of the payload alone (cached)."""
        return self._payload_size

    def to_wire(self) -> bytes:
        """Serialise for a byte transport (TCP); cached per message."""
        return self._wire

    @classmethod
    def from_wire(cls, data: bytes) -> "Message":
        try:
            decoded = json.loads(data.decode("utf-8"))
            message = cls(
                kind=decoded["kind"],
                sender=decoded["sender"],
                recipient=decoded["recipient"],
                payload=decoded["payload"],
                message_id=decoded.get("message_id", ""),
            )
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"malformed wire message: {exc}") from exc
        # Seed the wire cache with the received bytes: every coDB
        # sender serialises with ``stable_json``, so the bytes ARE the
        # stable form — the receive path never re-serialises just to
        # count sizes.
        message.__dict__["_wire"] = data
        return message

    def reply(self, kind: str, payload: dict[str, Any], message_id: str = "") -> "Message":
        """A message back to this message's sender."""
        return Message(
            kind=kind,
            sender=self.recipient,
            recipient=self.sender,
            payload=payload,
            message_id=message_id,
        )
