"""The abstract transport every coDB protocol layer talks to.

Two implementations ship: the deterministic simulated network
(:class:`repro.p2p.inproc.InProcessNetwork`) and the real TCP one
(:class:`repro.p2p.tcp.TcpNetwork`).  The contract:

* ``register(peer_id, handler)`` — attach a peer; *handler* is called
  with each delivered :class:`~repro.p2p.messages.Message`, one at a
  time per peer (actor-style serialisation, like coDB's DBM).
* ``send(message)`` — asynchronous, FIFO per (sender, recipient) pair
  (pipes preserve order; the update protocol relies on a close marker
  not overtaking the results sent before it).
* ``now()`` — the transport clock (virtual seconds for the simulator,
  monotonic seconds for TCP); all statistics timestamps use it.
* ``run_until_idle()`` — drive the network until no messages are in
  flight.  On the simulator this steps the event queue; on TCP it
  waits on the progress condition.
* ``wait_for(predicate, timeout)`` — block until *predicate* holds.
  This is the completion primitive every driver-facing wait goes
  through (request handles, ``as_completed``, statistics sweeps): the
  simulator steps its event queue one delivery at a time and re-checks
  after each (fine-grained, so completion *order* is observable);
  multi-threaded transports wait on :attr:`Transport.progress`, a
  condition their delivery loops notify after every handled message —
  no ``time.sleep`` polling anywhere.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.errors import RequestTimeoutError
from repro.p2p.messages import Message

MessageHandler = Callable[[Message], None]


@dataclass
class TransportStats:
    """Global traffic counters, shared by both transports.

    This base class is **not** thread-safe — the single-threaded
    simulator uses it as-is, lock-free.  Multi-threaded transports
    (TCP: the driver thread and every per-peer delivery thread all
    send) must use :class:`ThreadSafeTransportStats`, which guards the
    read-modify-write counters.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    #: Actual framed bytes written to a byte transport (length prefix
    #: included), in whatever codec each connection negotiated.  Stays
    #: 0 on the simulator, which moves no real bytes.  ``bytes_sent``
    #: by contrast is always the codec-independent stable-JSON volume
    #: (§4 statistics are identical across transports and codecs).
    wire_bytes_sent: int = 0
    messages_delivered: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    def record_send(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes()
        self.by_kind[message.kind] = self.by_kind.get(message.kind, 0) + 1

    def record_wire(self, nbytes: int) -> None:
        self.wire_bytes_sent += nbytes

    def record_delivery(self) -> None:
        self.messages_delivered += 1


class ThreadSafeTransportStats(TransportStats):
    """Lock-guarded counters for transports whose ``send`` runs on
    several threads concurrently (each ``+=`` and the ``by_kind``
    read-modify-write is a data race without it)."""

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def record_send(self, message: Message) -> None:
        with self._lock:
            super().record_send(message)

    def record_wire(self, nbytes: int) -> None:
        with self._lock:
            super().record_wire(nbytes)

    def record_delivery(self) -> None:
        with self._lock:
            super().record_delivery()


class Transport:
    """Abstract base; see module docstring for the contract."""

    def __init__(self) -> None:
        self.stats = TransportStats()
        #: Progress condition: notified (via :meth:`notify_progress`)
        #: after every handled message and on every request completion,
        #: so waiters re-check their predicates event-driven instead of
        #: sleep-polling.  ``_progress_gen`` is a generation counter
        #: that lets waiters detect progress that happened between
        #: checking their predicate and going to sleep (the classic
        #: missed-wakeup window) without evaluating predicates under
        #: the condition's lock.
        self.progress = threading.Condition()
        self._progress_gen = 0

    def notify_progress(self) -> None:
        """Wake every ``wait_for`` waiter to re-check its predicate."""
        with self.progress:
            self._progress_gen += 1
            self.progress.notify_all()

    def wait_for(
        self,
        predicate: Callable[[], bool],
        timeout: float | None = None,
        *,
        description: str = "operation",
    ) -> None:
        """Block until ``predicate()`` is true; event-driven.

        The default implementation (used by multi-threaded transports)
        waits on :attr:`progress`; delivery loops call
        :meth:`notify_progress` after each handled message.  Predicates
        are always evaluated *outside* the condition lock — they may
        read node state guarded by other locks.  Raises
        :class:`~repro.errors.RequestTimeoutError` after *timeout*
        seconds (``None`` waits forever).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self.progress:
                generation = self._progress_gen
            if predicate():
                return
            timed_out = False
            with self.progress:
                while self._progress_gen == generation and not timed_out:
                    if deadline is None:
                        self.progress.wait()
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self.progress.wait(remaining):
                        timed_out = True
            if timed_out:
                if predicate():
                    return
                raise RequestTimeoutError(
                    f"{description} did not complete within {timeout}s"
                )

    # -- peer management -------------------------------------------------

    def register(self, peer_id: str, handler: MessageHandler) -> None:
        raise NotImplementedError

    def unregister(self, peer_id: str) -> None:
        raise NotImplementedError

    def peers(self) -> list[str]:
        raise NotImplementedError

    def is_registered(self, peer_id: str) -> bool:
        return peer_id in self.peers()

    def severed_pairs(self) -> frozenset:
        """Peer pairs currently cut by an active partition, as
        ``frozenset({a, b})`` entries.  Non-empty only on transports
        with a fault layer installed; drivers use it to compute
        reachability for ``outcome="partial"`` reporting."""
        return frozenset()

    # -- messaging --------------------------------------------------------

    def send(self, message: Message) -> None:
        raise NotImplementedError

    def broadcast(self, sender: str, kind: str, payload: dict) -> int:
        """Send to every other registered peer; returns the fan-out.

        JXTA propagates discovery queries through the group; both our
        transports implement broadcast as unicast fan-out, which has
        the same observable behaviour on a connected group.
        """
        count = 0
        for peer in self.peers():
            if peer != sender:
                self.send(Message(kind=kind, sender=sender, recipient=peer, payload=payload))
                count += 1
        return count

    # -- time and progress -------------------------------------------------

    def now(self) -> float:
        raise NotImplementedError

    def run_until_idle(self, max_messages: int | None = None) -> int:
        """Deliver messages until quiescent; returns how many were delivered."""
        raise NotImplementedError

    def stop(self) -> None:
        """Tear the transport down (no-op on the simulator)."""
