"""Pipes: the communication links between acquainted peers.

From §2-3 of the paper: "When a node starts, it creates pipes with
those nodes, w.r.t. which it has coordination rules, or which have
coordination rules w.r.t. the given node.  Several coordination rules
w.r.t. a given node can use one pipe to send requests and data.  If
some coordination rules are dropped and a pipe is not assigned any
coordination rule, then this pipe is also closed."

A :class:`Pipe` is our end of such a link: it knows the remote peer,
which rule ids are assigned to it, and per-pipe traffic counters (the
statistics module aggregates them per coordination rule, §4).  The
:class:`PipeTable` implements the create/reuse/close-when-unassigned
life cycle quoted above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import PipeClosedError
from repro.p2p.endpoint import Endpoint
from repro.p2p.messages import Message


@dataclass
class PipeTraffic:
    """Traffic counters for one direction of one pipe.

    ``bytes`` counts :meth:`~repro.p2p.messages.Message.size_bytes` —
    the stable-JSON volume — so the §4 per-rule statistics are the
    same whichever frame codec the connection below negotiated.
    """

    messages: int = 0
    bytes: int = 0

    def record(self, message: Message) -> None:
        self.messages += 1
        self.bytes += message.size_bytes()


class Pipe:
    """One end of a communication link to *remote*."""

    def __init__(self, pipe_id: str, endpoint: Endpoint, remote: str) -> None:
        self.pipe_id = pipe_id
        self.endpoint = endpoint
        self.remote = remote
        self.open = True
        #: Coordination-rule ids assigned to this pipe.
        self.assigned_rules: set[str] = set()
        self.sent = PipeTraffic()
        self.received = PipeTraffic()

    def send(self, kind: str, payload: dict[str, Any]) -> Message:
        if not self.open:
            raise PipeClosedError(
                f"pipe {self.pipe_id} to {self.remote} is closed"
            )
        message = self.endpoint.send(self.remote, kind, payload)
        self.sent.record(message)
        return message

    def note_received(self, message: Message) -> None:
        """Called by the owner when a message arrives from this remote."""
        self.received.record(message)

    def close(self) -> None:
        self.open = False

    def __repr__(self) -> str:
        state = "open" if self.open else "closed"
        return f"<Pipe {self.pipe_id} -> {self.remote} [{state}]>"


class PipeTable:
    """All pipes of one peer, keyed by remote peer id."""

    def __init__(self, endpoint: Endpoint) -> None:
        self.endpoint = endpoint
        self._pipes: dict[str, Pipe] = {}
        self.closed_count = 0

    def pipe_to(self, remote: str, *, rule_id: str | None = None) -> Pipe:
        """Get or create the pipe to *remote*; optionally assign a rule.

        "Several coordination rules w.r.t. a given node can use one
        pipe" — one pipe per remote, rules accumulate on it.
        """
        pipe = self._pipes.get(remote)
        if pipe is None or not pipe.open:
            pipe = Pipe(self.endpoint.ids.pipe_id(), self.endpoint, remote)
            self._pipes[remote] = pipe
        if rule_id is not None:
            pipe.assigned_rules.add(rule_id)
        return pipe

    def get(self, remote: str) -> Pipe | None:
        pipe = self._pipes.get(remote)
        if pipe is not None and pipe.open:
            return pipe
        return None

    def unassign_rule(self, remote: str, rule_id: str) -> None:
        """Drop a rule from the pipe; close the pipe if none remain."""
        pipe = self._pipes.get(remote)
        if pipe is None:
            return
        pipe.assigned_rules.discard(rule_id)
        if not pipe.assigned_rules:
            pipe.close()
            self.closed_count += 1
            del self._pipes[remote]

    def drop_all(self) -> None:
        """Close every pipe (rules file replaced; §4's re-wiring)."""
        for pipe in self._pipes.values():
            pipe.close()
            self.closed_count += 1
        self._pipes.clear()

    def note_received(self, message: Message) -> None:
        pipe = self._pipes.get(message.sender)
        if pipe is not None:
            pipe.note_received(message)

    def remotes(self) -> list[str]:
        return [remote for remote, pipe in self._pipes.items() if pipe.open]

    def __len__(self) -> int:
        return sum(1 for pipe in self._pipes.values() if pipe.open)

    def __iter__(self):
        return iter([p for p in self._pipes.values() if p.open])
