"""Exception hierarchy for the coDB reproduction.

Every error raised by the library derives from :class:`CoDBError`, so a
caller can catch one type.  Sub-hierarchies mirror the package layout:
relational-engine errors, parser errors, network errors and protocol
errors.
"""

from __future__ import annotations


class CoDBError(Exception):
    """Base class of every error raised by this library."""


class SchemaError(CoDBError):
    """A relation or attribute does not match the declared schema."""


class UnknownRelationError(SchemaError):
    """A query or rule references a relation the schema does not define."""

    def __init__(self, relation: str, where: str = "") -> None:
        suffix = f" in {where}" if where else ""
        super().__init__(f"unknown relation {relation!r}{suffix}")
        self.relation = relation


class ArityError(SchemaError):
    """A tuple or atom has the wrong number of terms for its relation."""

    def __init__(self, relation: str, expected: int, got: int) -> None:
        super().__init__(
            f"relation {relation!r} has arity {expected}, got {got} terms"
        )
        self.relation = relation
        self.expected = expected
        self.got = got


class TypeMismatchError(SchemaError):
    """A value's type does not match the declared attribute type."""


class QueryError(CoDBError):
    """A conjunctive query is malformed (e.g. unsafe head variable)."""


class UnsafeQueryError(QueryError):
    """A head or comparison variable does not occur in a body atom."""

    def __init__(self, variable: str, where: str = "query") -> None:
        super().__init__(
            f"variable {variable!r} in {where} does not occur in any "
            "relational body atom (unsafe)"
        )
        self.variable = variable


class ParseError(CoDBError):
    """Raised by the textual syntax parser, with position information."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class RuleError(CoDBError):
    """A coordination rule is malformed or inconsistent with the schemas."""


class NetworkError(CoDBError):
    """Base class for transport-level failures."""


class UnknownPeerError(NetworkError):
    """A message was addressed to a peer id not present on the network."""

    def __init__(self, peer_id: str) -> None:
        super().__init__(f"unknown peer {peer_id!r}")
        self.peer_id = peer_id


class PipeClosedError(NetworkError):
    """A send was attempted on a pipe that has been closed."""


class TransportStoppedError(NetworkError):
    """An operation was attempted on a transport that is not running."""


class ProtocolError(CoDBError):
    """A coDB protocol message violated the expected state machine."""


class RequestTimeoutError(ProtocolError):
    """Waiting on a request handle (or a network predicate) timed out.

    Raised by :meth:`repro.core.requests.RequestHandle.result` when the
    request did not complete within ``timeout`` seconds, and on the
    simulated transport when the event queue drains before the awaited
    condition holds (nothing left in flight can ever complete it).
    Subclasses :class:`ProtocolError` so pre-handle-API callers that
    caught the old poll-loop error keep working.
    """


class RequestCancelledError(ProtocolError):
    """The request handle was cancelled before admission; it never ran."""


class UpdateAbortedError(ProtocolError):
    """A global update was aborted (guard tripped or network torn down)."""


class FixpointGuardError(UpdateAbortedError):
    """The fix-point iteration guard tripped.

    With cyclic coordination rules whose heads introduce existential
    variables, the naive chase may diverge (each round mints fresh
    marked nulls that re-fire the cycle).  The engine raises this error
    instead of spinning forever; see
    :func:`repro.relational.analysis.is_weakly_acyclic` for the static
    check and the ``subsumption`` dedup mode for a dynamic remedy.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(
            f"global update exceeded the fix-point guard of {limit} rounds; "
            "the rule set is likely not weakly acyclic "
            "(enable subsumption dedup or raise the guard)"
        )
        self.limit = limit


class WrapperError(CoDBError):
    """The storage wrapper could not execute an operation on the LDB."""


class StatisticsError(CoDBError):
    """Statistics collection or aggregation failed."""
