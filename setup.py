"""Legacy setup shim.

The execution environment has no network access and no ``wheel``
package, so PEP 517 editable installs fail; this shim lets
``pip install -e . --no-use-pep517`` (or ``python setup.py develop``)
work with plain setuptools.  Metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
